//! The generic stable-skeleton estimator — Algorithm 1, lines 14–25.
//!
//! Every process `p` maintains a weighted digraph `G_p` approximating the
//! run's stable skeleton `G∩∞`. Each round `r`, after updating its timely
//! neighborhood `PT_p`:
//!
//! * **line 15** — reset `G_p ← ⟨{p}, ∅⟩` (no information is lost: `p`'s own
//!   previous graph arrives back through `p`'s own broadcast, since
//!   `p ∈ PT_p`);
//! * **lines 16–18** — for every `q ∈ PT_p`, add the fresh edge
//!   `(q --r--> p)` and union `q`'s node set `V_q` into `V_p`;
//! * **lines 19–23** — for every node pair, keep the **maximum** round label
//!   over all received graphs (so each pair has at most one labelled edge,
//!   Lemma 3(c));
//! * **line 24** — discard edges whose label is `≤ r − n` (information
//!   older than `n − 1` rounds can no longer be confirmed, Observation 1);
//! * **line 25** — discard nodes from which `p` is unreachable.
//!
//! The paper emphasizes that this estimator is correct in *all* runs,
//! regardless of any communication predicate (Lemmas 3–8): it is exposed
//! standalone here so it can be reused to monitor perpetual synchrony even
//! when no agreement is being solved (see `examples/skeleton_monitor.rs`).

use std::sync::Arc;

use sskel_graph::reach::BfsScratch;
use sskel_graph::scc::SccScratch;
use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet, Round};

/// Default rebase threshold: the delta window is renormalized once
/// `r − base` exceeds this, leaving 4096 rounds of headroom below
/// `u16::MAX` so fresh edges and received labels always fit without a
/// mid-merge rebase.
const DEFAULT_REBASE_LIMIT: Round = u16::MAX as Round - 4096;

/// The canonical base round of `G_p` at round `r`, for a universe of size
/// `n` and a rebase threshold `limit`.
///
/// Starting from base 0, a rebase fires at the first round with
/// `r − base > limit` and moves the base to `r − n − 1` — the largest value
/// strictly below every label that can still be live in any round-`r`
/// graph (own or received, since line 24 purged everything `≤ r − 1 − n`
/// at the previous round). Because the trigger depends only on `(r, base)`
/// and every process starts from base 0, the whole closed form is a pure
/// function of `r`: rebases fire at `r_k = k·S + limit + 1` for
/// `S = limit − n`, producing base `(k + 1)·S`. **Every process therefore
/// carries the same base at the same round**, which keeps the hot merge on
/// the aligned fast path (operand translation happens only in the one
/// round where a rebase fires) and keeps the wire accounting byte-identical
/// across engines and payload-cloning strategies.
pub fn canonical_base(r: Round, n: usize, limit: Round) -> Round {
    if r <= limit {
        return 0;
    }
    let step = limit - n as Round; // ≥ 2: `set_rebase_limit` enforces limit > n + 1
    ((r - limit - 1) / step + 1) * step
}

/// Scratch buffer of borrowed graph payloads collected for the batched
/// merge. Stored as raw pointers so the allocation persists across rounds
/// without infecting the estimator with a lifetime parameter; the vector is
/// filled and fully drained inside a single [`SkeletonEstimator::update`]
/// call and never dereferenced outside it.
struct GraphBatch(Vec<*const LabeledDigraph>);

// SAFETY: the vector is empty whenever `update` is not executing, so moving
// the estimator to another thread never transfers live borrows.
unsafe impl Send for GraphBatch {}
// SAFETY: same invariant as `Send` above — between `update` calls there is
// nothing to alias, and during one the batch is confined to that call.
unsafe impl Sync for GraphBatch {}

impl Clone for GraphBatch {
    fn clone(&self) -> Self {
        // Only the (empty-between-rounds) capacity would be cloned.
        GraphBatch(Vec::new())
    }
}

impl std::fmt::Debug for GraphBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("GraphBatch").field(&self.0.len()).finish()
    }
}

/// Reusable per-estimator working memory: BFS frontiers, node-set buffers
/// and the freshness-test distance array. Rebuilding these each round was
/// the dominant allocation cost of the faithful implementation.
#[derive(Clone, Debug)]
struct EstimatorScratch {
    keep: ProcessSet,
    dropped: ProcessSet,
    bfs: BfsScratch,
    scc: SccScratch,
    dist: Vec<u32>,
    /// `PT_p` members whose graph arrived this round (line 17's fresh-edge
    /// sources), rebuilt every `update`.
    senders: ProcessSet,
    /// The round's received payloads, folded in one batched merge.
    batch: GraphBatch,
}

impl EstimatorScratch {
    fn new(n: usize) -> Self {
        EstimatorScratch {
            keep: ProcessSet::empty(n),
            dropped: ProcessSet::empty(n),
            bfs: BfsScratch::new(n),
            scc: SccScratch::new(n),
            dist: vec![u32::MAX; n],
            senders: ProcessSet::empty(n),
            batch: GraphBatch(Vec::new()),
        }
    }
}

/// Per-process stable-skeleton estimator.
///
/// The approximation graph is double-buffered: [`SkeletonEstimator::update`]
/// builds `G_p^r` in place into the buffer that carried `G_p^{r-2}`, while
/// `G_p^{r-1}` stays alive for the round's broadcast
/// ([`SkeletonEstimator::graph_arc`] hands out a shared reference, so
/// `send` never deep-copies the dense matrix). After warm-up, one `update`
/// performs **zero heap allocations** (verified by
/// `tests/alloc_counter.rs`).
///
/// ```
/// use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet};
/// use sskel_kset::approx::SkeletonEstimator;
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut est = SkeletonEstimator::new(2, p0);
/// // round 1: p0 hears itself and p1; p1's graph is still ⟨{p1}, ∅⟩
/// let pt = ProcessSet::from_indices(2, [0, 1]);
/// let own = est.graph_arc();
/// let other = LabeledDigraph::with_node(2, p1);
/// est.update(1, &pt, [(p0, &*own), (p1, &other)].into_iter());
/// assert_eq!(est.graph().label(p1, p0), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct SkeletonEstimator {
    me: ProcessId,
    n: usize,
    /// `G_p^{r-1}`, shared with this round's outgoing message.
    cur: Arc<LabeledDigraph>,
    /// The other buffer, reused to build `G_p^r` once all round-`(r-1)`
    /// messages have been dropped.
    spare: Arc<LabeledDigraph>,
    /// Rebase threshold for the graph's `u16` delta window (see
    /// [`SkeletonEstimator::set_rebase_limit`]).
    rebase_limit: Round,
    scratch: EstimatorScratch,
}

impl SkeletonEstimator {
    /// Fresh estimator for process `me` in a universe of size `n`:
    /// `G_p = ⟨{p}, ∅⟩` (line 3 of Algorithm 1).
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(me.index() < n, "process out of universe");
        SkeletonEstimator {
            me,
            n,
            cur: Arc::new(LabeledDigraph::with_node(n, me)),
            spare: Arc::new(LabeledDigraph::with_node(n, me)),
            rebase_limit: DEFAULT_REBASE_LIMIT.max(n as Round + 2),
            scratch: EstimatorScratch::new(n),
        }
    }

    /// Overrides the delta-window rebase threshold (default: close to
    /// `u16::MAX`, so rebases fire every ≈ 61 000 rounds). A smaller value
    /// forces rebases early — useful for tests and benchmarks that want to
    /// exercise the rebase path without simulating tens of thousands of
    /// rounds. The limit must be **identical across every process of a
    /// run** and set before the first `update`: the canonical rebase
    /// schedule derives from it, and processes on different schedules would
    /// pay the translated (base-mismatched) merge every round.
    ///
    /// # Panics
    /// Panics if `limit ≤ n + 1` (the window must cover the `n + 1` live
    /// rounds plus one rebase step) or `limit > u16::MAX`.
    pub fn set_rebase_limit(&mut self, limit: Round) {
        assert!(
            limit > self.n as Round + 1,
            "rebase limit {limit} does not cover the n + 1 live label window"
        );
        assert!(
            limit <= u16::MAX as Round,
            "rebase limit {limit} exceeds the u16 delta window"
        );
        self.rebase_limit = limit;
    }

    /// The current rebase threshold (see
    /// [`SkeletonEstimator::set_rebase_limit`]).
    #[inline]
    pub fn rebase_limit(&self) -> Round {
        self.rebase_limit
    }

    /// Restores the estimator to the exact state of
    /// [`SkeletonEstimator::new`]`(n, me)` — same universe, possibly a
    /// different process — **reusing the existing graph buffers** instead
    /// of allocating fresh ones. This is the pooling hook
    /// ([`crate::AgreementPool`]) that lets an agreement service retire a
    /// decided instance and admit a new one without touching the
    /// allocator: both labelled digraphs are reset in place
    /// ([`LabeledDigraph::reset_to_node`], incremental over dirty rows)
    /// and rebased back to the initial delta base, and the scratch space
    /// is already call-local to `update`. If a graph `Arc` is still shared
    /// (a round message holding [`SkeletonEstimator::graph_arc`] outlives
    /// the run), that buffer alone is reallocated.
    ///
    /// # Panics
    /// Panics if `me` is outside the universe.
    pub fn recycle(&mut self, me: ProcessId) {
        assert!(me.index() < self.n, "process out of universe");
        self.me = me;
        self.rebase_limit = DEFAULT_REBASE_LIMIT.max(self.n as Round + 2);
        for graph in [&mut self.cur, &mut self.spare] {
            match Arc::get_mut(graph) {
                Some(g) => {
                    g.reset_to_node(me);
                    g.rebase(0);
                }
                None => *graph = Arc::new(LabeledDigraph::with_node(self.n, me)),
            }
        }
    }

    /// `true` iff the end of round `r` is a **canonical cut point**: the
    /// first round carrying a fresh [`canonical_base`] — i.e. the round in
    /// which the delta window rebased. The graph is then freshly compacted
    /// and every process's base agrees, which makes these rounds the
    /// snapshot points of the crash/restart recovery drill (a snapshot
    /// taken here round-trips through the wire codec with no pending
    /// rebase state to reconstruct).
    pub fn snapshot_due(&self, r: Round) -> bool {
        r >= 1
            && canonical_base(r, self.n, self.rebase_limit)
                != canonical_base(r.saturating_sub(1), self.n, self.rebase_limit)
    }

    /// Rebuilds an estimator from snapshotted parts: the owner, the
    /// approximation graph as of the snapshot round, and the run's rebase
    /// threshold. The inverse of reading [`SkeletonEstimator::graph`] and
    /// [`SkeletonEstimator::rebase_limit`] back out; scratch memory is
    /// reallocated cold (it carries no round state).
    ///
    /// # Panics
    /// Panics if `me` is outside the universe, the graph's universe is not
    /// `n`, or `limit` violates [`SkeletonEstimator::set_rebase_limit`]'s
    /// bounds.
    pub fn from_parts(n: usize, me: ProcessId, graph: LabeledDigraph, limit: Round) -> Self {
        assert!(me.index() < n, "process out of universe");
        assert_eq!(graph.universe(), n, "snapshot graph universe mismatch");
        let mut est = SkeletonEstimator {
            me,
            n,
            cur: Arc::new(graph),
            spare: Arc::new(LabeledDigraph::with_node(n, me)),
            rebase_limit: DEFAULT_REBASE_LIMIT.max(n as Round + 2),
            scratch: EstimatorScratch::new(n),
        };
        est.set_rebase_limit(limit);
        est
    }

    /// The current approximation `G_p^r`.
    #[inline]
    pub fn graph(&self) -> &LabeledDigraph {
        &self.cur
    }

    /// The current approximation as a shared handle — what `send` puts in
    /// the round message, avoiding the dense-matrix clone per broadcast.
    #[inline]
    pub fn graph_arc(&self) -> Arc<LabeledDigraph> {
        Arc::clone(&self.cur)
    }

    /// The owning process.
    #[inline]
    pub fn owner(&self) -> ProcessId {
        self.me
    }

    /// One round of approximation (lines 14–25).
    ///
    /// * `r` — the current round;
    /// * `pt` — `PT(p, r)`, already updated for round `r` (line 9);
    /// * `received` — the approximation graph carried by the round-`r`
    ///   message of each `q ∈ PT_p` (i.e. `G_q^{r−1}`). Senders outside
    ///   `PT_p` must not be passed; passing fewer senders than `pt` models
    ///   the (never occurring, but defensively handled) case of a timely
    ///   process whose graph was not delivered.
    ///
    /// The round's payloads are folded in one **batched merge**
    /// ([`LabeledDigraph::merge_max_batch`]). When `p`'s own previous
    /// broadcast is among them (it always is under the engines, which hand
    /// out shared [`SkeletonEstimator::graph_arc`] handles), line 15's reset
    /// plus the re-merge of `G_p^{r-1}` collapse into a single `memcpy`
    /// seed of the new buffer: the merge is a pure max/union, so starting
    /// from `G_p^{r-1}` is exactly equivalent to resetting and merging it
    /// back in — but skips rebuilding the adjacency bitsets bit by bit.
    pub fn update<'a>(
        &mut self,
        r: Round,
        pt: &ProcessSet,
        received: impl Iterator<Item = (ProcessId, &'a LabeledDigraph)>,
    ) {
        debug_assert!(pt.contains(self.me), "p must always perceive itself timely");
        // Collect the round's payloads so they can be folded in one batched
        // pass, and detect p's own re-received broadcast by address.
        let cur_ptr: *const LabeledDigraph = &*self.cur;
        let mut batch = std::mem::take(&mut self.scratch.batch.0);
        debug_assert!(batch.is_empty());
        self.scratch.senders.clear();
        let mut own_rebroadcast = false;
        for (q, gq) in received {
            debug_assert!(pt.contains(q), "received a graph from outside PT_p");
            debug_assert_eq!(gq.universe(), self.n, "foreign universe");
            self.scratch.senders.insert(q);
            let ptr: *const LabeledDigraph = gq;
            if std::ptr::eq(ptr, cur_ptr) {
                own_rebroadcast = true; // replayed wholesale by the seed below
            } else {
                batch.push(ptr);
            }
        }
        // line 15 — rebuild into the spare buffer in place. The spare held
        // G_p^{r-2}, whose message handles were dropped when round r-1
        // ended; if something still shares it (an engine that keeps old
        // messages alive, a cloned estimator), fall back to a fresh buffer.
        let g = match Arc::get_mut(&mut self.spare) {
            Some(g) => g,
            None => {
                self.spare = Arc::new(LabeledDigraph::with_node(self.n, self.me));
                Arc::get_mut(&mut self.spare).expect("freshly allocated Arc is unique")
            }
        };
        if own_rebroadcast {
            // Seed with G_p^{r-1}: line 15's reset loses nothing precisely
            // because p re-receives its own graph (p ∈ PT_p), so the reset
            // and that merge fuse into one allocation-free matrix copy.
            g.clone_from(&self.cur);
        } else {
            g.reset_to_node(self.me);
        }
        // Delta-window maintenance: pin the graph's base to the canonical
        // schedule for round r (a no-op except every ≈ rebase_limit rounds;
        // O(1) on the just-reset graph, one row pass over the seeded one).
        // Doing it *before* the fresh edges and the merge guarantees both
        // that `set_edge_max(.., r)` fits the window and that every
        // process's base agrees, so the batched merge below stays on its
        // aligned fast path in all but the rebase round itself.
        let target_base = canonical_base(r, self.n, self.rebase_limit);
        if g.base() != target_base {
            g.rebase(target_base);
        }
        // lines 16–23
        for q in self.scratch.senders.iter() {
            g.set_edge_max(q, self.me, r); // line 17
        }
        // SAFETY: every pointer was collected from a `&'a LabeledDigraph`
        // above and is dereferenced strictly before this call returns;
        // `&[&T]` and `&[*const T]` share one thin-pointer layout.
        let others: &[&LabeledDigraph] =
            unsafe { std::slice::from_raw_parts(batch.as_ptr().cast(), batch.len()) };
        g.merge_max_batch(others); // lines 18–23 (max-combine keeps r on (q→p))
        batch.clear();
        self.scratch.batch.0 = batch;
        let g = Arc::get_mut(&mut self.spare).expect("no new handles were created");
        // line 24: discard labels ≤ r − n
        let cutoff = r.saturating_sub(self.n as Round);
        if cutoff >= 1 {
            g.purge_labels_le(cutoff);
        }
        // line 25: discard nodes from which p is unreachable
        g.retain_reaching_into(
            self.me,
            &mut self.scratch.keep,
            &mut self.scratch.dropped,
            &mut self.scratch.bfs,
        );
        // Publish G_p^r; the old `cur` keeps serving in-flight messages.
        std::mem::swap(&mut self.cur, &mut self.spare);
    }

    /// Algorithm 1's decision test (line 28): is `G_p` strongly connected?
    ///
    /// Takes `&mut self` to reuse the BFS buffers; the graph itself is not
    /// modified.
    #[inline]
    pub fn is_strongly_connected(&mut self) -> bool {
        self.cur.is_strongly_connected_with(&mut self.scratch.scc)
    }

    /// Coherent-freshness test for the repaired decision rule
    /// ([`crate::alg1::DecisionRule::FreshnessGuarded`]).
    ///
    /// Information in `G_p` about the in-edges of a node `v` is necessarily
    /// `d` rounds stale, where `d` is `v`'s distance to `p`: by Lemma 4, a
    /// *perpetually* timely edge `(u → v)` always carries a label
    /// `s ≥ r − d`. A label older than that can only stem from an edge that
    /// has already left the skeleton — exactly the stale-noise situation
    /// that breaks the paper's Lemma 15 (see `tests/counterexample.rs`).
    /// This predicate therefore accepts `G_p` only if
    ///
    /// ```text
    /// ∀ (u --s--> v) ∈ G_p :  s + dist(v → p) ≥ r
    /// ```
    ///
    /// In runs whose skeleton has stabilized it holds with equality from
    /// round `rST + n − 1` on, so the Lemma-11 termination bound is
    /// unaffected.
    /// Takes `&mut self` to reuse the BFS level buffers; the graph itself
    /// is not modified.
    pub fn is_coherently_fresh(&mut self, r: Round) -> bool {
        let g = &*self.cur;
        let s = &mut self.scratch;
        // dist[v] = length of the shortest path v → me in G_p (`keep` is
        // free outside `update` and doubles as the BFS visited set).
        sskel_graph::reach::ancestor_distances_into(
            g,
            self.me,
            g.nodes(),
            &mut s.dist,
            &mut s.keep,
            &mut s.bfs,
        );
        g.edges().all(|(_, v, lbl)| {
            let d = s.dist[v.index()];
            d != u32::MAX && lbl.saturating_add(d) >= r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from_usize(i)
    }

    /// Drives a set of estimators through rounds of a fixed skeleton by
    /// hand (simulating the broadcast of each estimator's previous graph).
    fn step_all(
        ests: &mut [SkeletonEstimator],
        r: Round,
        pt_of: &[ProcessSet],
        hears: impl Fn(usize, usize) -> bool,
    ) {
        let n = ests.len();
        let broadcast: Vec<LabeledDigraph> = ests.iter().map(|e| e.graph().clone()).collect();
        for (i, est) in ests.iter_mut().enumerate() {
            let rcv: Vec<(ProcessId, &LabeledDigraph)> = (0..n)
                .filter(|&q| hears(i, q))
                .map(|q| (p(q), &broadcast[q]))
                .collect();
            est.update(r, &pt_of[i], rcv.into_iter());
        }
    }

    #[test]
    fn initial_state_is_single_node() {
        let mut est = SkeletonEstimator::new(4, p(2));
        assert_eq!(est.graph().node_count(), 1);
        assert!(est.graph().contains_node(p(2)));
        assert!(est.is_strongly_connected()); // singleton convention
    }

    #[test]
    fn two_process_cycle_becomes_strongly_connected() {
        // skeleton: p0 ↔ p1 (plus self-loops): both timely to each other
        let n = 2;
        let pt_full = vec![ProcessSet::full(n), ProcessSet::full(n)];
        let mut ests = vec![
            SkeletonEstimator::new(n, p(0)),
            SkeletonEstimator::new(n, p(1)),
        ];
        step_all(&mut ests, 1, &pt_full, |_, _| true);
        // after round 1 each knows the inbound edges but not the reverse
        assert_eq!(ests[0].graph().label(p(1), p(0)), Some(1));
        step_all(&mut ests, 2, &pt_full, |_, _| true);
        // after round 2, p0 learned (p0 → p1) from p1's round-1 graph
        assert_eq!(ests[0].graph().label(p(0), p(1)), Some(1));
        assert!(ests[0].is_strongly_connected());
        assert!(ests[1].is_strongly_connected());
    }

    #[test]
    fn chain_receiver_never_strongly_connected() {
        // skeleton: p0 → p1 (p1 hears p0, not vice versa)
        let n = 2;
        let pts = vec![
            ProcessSet::from_indices(n, [0]),
            ProcessSet::from_indices(n, [0, 1]),
        ];
        let mut ests = vec![
            SkeletonEstimator::new(n, p(0)),
            SkeletonEstimator::new(n, p(1)),
        ];
        for r in 1..=6 {
            step_all(&mut ests, r, &pts, |i, q| pts[i].contains(p(q)));
            // p0 sees only itself: SC (singleton). p1 sees p0 → p1 but no
            // path back: nodes {p0, p1} with only the inbound edge — not SC.
            assert!(ests[0].is_strongly_connected());
            assert!(!ests[1].is_strongly_connected(), "round {r}");
            assert_eq!(ests[1].graph().label(p(0), p(1)), Some(r));
        }
    }

    #[test]
    fn fresh_timely_edges_always_carry_the_current_round() {
        // Lemma 3(b): after update(r), (q --r--> p) for every q ∈ PT(p, r).
        let n = 3;
        let pts: Vec<ProcessSet> = (0..n).map(|_| ProcessSet::full(n)).collect();
        let mut ests: Vec<SkeletonEstimator> =
            (0..n).map(|i| SkeletonEstimator::new(n, p(i))).collect();
        for r in 1..=5 {
            step_all(&mut ests, r, &pts, |_, _| true);
            for (i, est) in ests.iter().enumerate() {
                for q in 0..n {
                    assert_eq!(est.graph().label(p(q), p(i)), Some(r), "round {r}");
                }
            }
        }
    }

    #[test]
    fn observation_1_no_stale_labels_survive() {
        let n = 3;
        let pts: Vec<ProcessSet> = (0..n).map(|_| ProcessSet::full(n)).collect();
        let mut ests: Vec<SkeletonEstimator> =
            (0..n).map(|i| SkeletonEstimator::new(n, p(i))).collect();
        for r in 1..=10 {
            step_all(&mut ests, r, &pts, |_, _| true);
            for est in &ests {
                if let Some(min) = est.graph().min_label() {
                    assert!(min > r.saturating_sub(n as u32), "round {r}");
                }
                assert!(est.graph().contains_node(est.owner()));
            }
        }
    }

    #[test]
    fn unreachable_nodes_are_pruned() {
        // p0's PT = {p0, p1}; p1 delivers a graph naming node p2 with no
        // path to p0 ⇒ p2 must be pruned from p0's approximation.
        let mut est = SkeletonEstimator::new(3, p(0));
        let mut foreign = LabeledDigraph::with_node(3, p(1));
        foreign.insert_node(p(2));
        foreign.set_edge_max(p(0), p(2), 1); // edge AWAY from p0
        let own = est.graph().clone();
        let pt = ProcessSet::from_indices(3, [0, 1]);
        est.update(2, &pt, [(p(0), &own), (p(1), &foreign)].into_iter());
        assert!(!est.graph().contains_node(p(2)));
        assert!(est.graph().contains_node(p(1)));
        assert_eq!(est.graph().label(p(1), p(0)), Some(2));
    }

    #[test]
    fn canonical_base_matches_the_trigger_simulation() {
        for (n, limit) in [(3usize, 8u32), (5, 10), (8, 16), (4, DEFAULT_REBASE_LIMIT)] {
            let mut base = 0u32;
            for r in 1..=1200u32 {
                if r - base > limit {
                    base = r - n as u32 - 1;
                }
                assert_eq!(
                    canonical_base(r, n, limit),
                    base,
                    "n={n} limit={limit} r={r}"
                );
                // invariants the window arithmetic relies on
                assert!(r - base <= limit, "window exhausted at r={r}");
                assert!(
                    base == 0 || base < r - n as u32,
                    "base ahead of live labels"
                );
            }
        }
    }

    #[test]
    fn estimators_agree_across_forced_rebases() {
        // A long run with a tiny rebase limit crosses many rebase
        // boundaries; the approximation must match an estimator that never
        // rebases (graph equality is base-insensitive), and Lemma 3(b)
        // must keep holding right through every boundary.
        let n = 3;
        let pts: Vec<ProcessSet> = (0..n).map(|_| ProcessSet::full(n)).collect();
        let mut fast: Vec<SkeletonEstimator> =
            (0..n).map(|i| SkeletonEstimator::new(n, p(i))).collect();
        for est in &mut fast {
            est.set_rebase_limit(6); // n + 3: rebases every 3 rounds
        }
        let mut slow: Vec<SkeletonEstimator> =
            (0..n).map(|i| SkeletonEstimator::new(n, p(i))).collect();
        for r in 1..=40u32 {
            step_all(&mut fast, r, &pts, |_, _| true);
            step_all(&mut slow, r, &pts, |_, _| true);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.graph(), s.graph(), "round {r}");
            }
            for (i, est) in fast.iter().enumerate() {
                for q in 0..n {
                    assert_eq!(est.graph().label(p(q), p(i)), Some(r), "round {r}");
                }
            }
        }
        // the rebase schedule actually fired
        assert!(fast[0].graph().base() > 0);
        assert_eq!(slow[0].graph().base(), 0);
    }

    #[test]
    #[should_panic(expected = "live label window")]
    fn rebase_limit_must_cover_the_window() {
        let mut est = SkeletonEstimator::new(8, p(0));
        est.set_rebase_limit(9);
    }

    #[test]
    fn stale_information_ages_out_after_n_rounds() {
        // p0 hears p1 only in round 1 (edge enters PT then leaves):
        // PT(p0, 1) = {p0, p1}, later PT = {p0}. The (p1 --1--> p0) edge
        // must be gone by round n + 1 = 4 at the latest (here it vanishes as
        // soon as the label ages out).
        let n = 3;
        let mut est = SkeletonEstimator::new(n, p(0));
        let other = LabeledDigraph::with_node(n, p(1));
        let own1 = est.graph().clone();
        est.update(
            1,
            &ProcessSet::from_indices(n, [0, 1]),
            [(p(0), &own1), (p(1), &other)].into_iter(),
        );
        assert_eq!(est.graph().label(p(1), p(0)), Some(1));
        for r in 2..=6 {
            let own = est.graph().clone();
            est.update(
                r,
                &ProcessSet::from_indices(n, [0]),
                [(p(0), &own)].into_iter(),
            );
            if r > n as u32 + 1 {
                assert!(!est.graph().contains_node(p(1)), "round {r}");
            }
        }
    }
}
