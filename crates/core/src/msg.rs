//! Round messages of Algorithm 1.
//!
//! Every round, a process broadcasts `(prop, x_p, G_p)` while undecided and
//! `(decide, x_p, G_p)` afterwards (lines 5–8). The graph payload is what
//! makes the message bit complexity polynomial in `n` (§V) — measured
//! exactly by the [`Wire`] encoding.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use sskel_graph::LabeledDigraph;
use sskel_model::{Value, Wire, WireError, WireSized};

/// The message kind tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Still undecided: `(prop, x_p, G_p)`.
    Prop,
    /// Decided: `(decide, x_p, G_p)`.
    Decide,
}

/// A round message of Algorithm 1.
///
/// Built through [`KSetMsg::new`], which sizes the encoded payload once;
/// the engines' per-delivery byte accounting then reads the cached size
/// instead of re-walking `G_p`'s edges on every broadcast. The fields are
/// private — messages are immutable once constructed, which is what keeps
/// the cached size trustworthy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KSetMsg {
    kind: MsgKind,
    x: Value,
    graph: Arc<LabeledDigraph>,
    /// Encoded size in bytes, computed at construction.
    wire: usize,
}

impl KSetMsg {
    /// Assembles a round message, computing its encoded size once.
    pub fn new(kind: MsgKind, x: Value, graph: Arc<LabeledDigraph>) -> Self {
        let wire = 1 + x.wire_bytes() + graph.wire_bytes();
        KSetMsg {
            kind,
            x,
            graph,
            wire,
        }
    }

    /// `prop` or `decide`.
    #[inline]
    pub fn kind(&self) -> MsgKind {
        self.kind
    }

    /// The sender's current estimate `x_p` (its decision value if decided).
    #[inline]
    pub fn x(&self) -> Value {
        self.x
    }

    /// The sender's approximation graph `G_p` at the beginning of the
    /// round. Shared with the sender's estimator: broadcasting does not
    /// deep-copy the dense label matrix.
    #[inline]
    pub fn graph(&self) -> &Arc<LabeledDigraph> {
        &self.graph
    }

    /// `true` iff this is a decide message.
    #[inline]
    pub fn is_decide(&self) -> bool {
        self.kind == MsgKind::Decide
    }
}

impl WireSized for KSetMsg {
    #[inline]
    fn wire_bytes(&self) -> usize {
        self.wire
    }
}

impl Wire for KSetMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(match self.kind {
            MsgKind::Prop => 0,
            MsgKind::Decide => 1,
        });
        self.x.encode(buf);
        self.graph.encode(buf);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let kind = match buf.get_u8() {
            0 => MsgKind::Prop,
            1 => MsgKind::Decide,
            _ => return Err(WireError::InvalidValue("unknown message kind")),
        };
        let x = Value::decode(buf)?;
        let graph = Arc::new(LabeledDigraph::decode(buf)?);
        Ok(KSetMsg::new(kind, x, graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_graph::ProcessId;

    fn sample_msg(kind: MsgKind) -> KSetMsg {
        let mut g = LabeledDigraph::with_node(5, ProcessId::new(0));
        g.set_edge_max(ProcessId::new(1), ProcessId::new(0), 3);
        g.set_edge_max(ProcessId::new(0), ProcessId::new(0), 4);
        KSetMsg::new(kind, 42, Arc::new(g))
    }

    #[test]
    fn round_trips() {
        for kind in [MsgKind::Prop, MsgKind::Decide] {
            let m = sample_msg(kind);
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.wire_bytes());
            let mut rd = bytes.clone();
            assert_eq!(KSetMsg::decode(&mut rd).unwrap(), m);
            assert!(!rd.has_remaining());
        }
    }

    #[test]
    fn rejects_bad_kind() {
        let mut bytes = sample_msg(MsgKind::Prop).to_bytes().to_vec();
        bytes[0] = 9;
        let mut rd = &bytes[..];
        assert!(matches!(
            KSetMsg::decode(&mut rd),
            Err(WireError::InvalidValue(_))
        ));
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let mut rd: &[u8] = &[];
        assert_eq!(KSetMsg::decode(&mut rd), Err(WireError::UnexpectedEnd));
    }
}
