//! Round messages of Algorithm 1.
//!
//! Every round, a process broadcasts `(prop, x_p, G_p)` while undecided and
//! `(decide, x_p, G_p)` afterwards (lines 5–8). The graph payload is what
//! makes the message bit complexity polynomial in `n` (§V) — measured
//! exactly by the [`Wire`] encoding.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use sskel_graph::LabeledDigraph;
use sskel_model::{Value, Wire, WireError, WireSized};

/// The message kind tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Still undecided: `(prop, x_p, G_p)`.
    Prop,
    /// Decided: `(decide, x_p, G_p)`.
    Decide,
}

/// A round message of Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KSetMsg {
    /// `prop` or `decide`.
    pub kind: MsgKind,
    /// The sender's current estimate `x_p` (its decision value if decided).
    pub x: Value,
    /// The sender's approximation graph `G_p` at the beginning of the
    /// round. Shared with the sender's estimator: broadcasting does not
    /// deep-copy the dense label matrix.
    pub graph: Arc<LabeledDigraph>,
}

impl KSetMsg {
    /// `true` iff this is a decide message.
    #[inline]
    pub fn is_decide(&self) -> bool {
        self.kind == MsgKind::Decide
    }
}

impl WireSized for KSetMsg {
    fn wire_bytes(&self) -> usize {
        1 + self.x.wire_bytes() + self.graph.wire_bytes()
    }
}

impl Wire for KSetMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(match self.kind {
            MsgKind::Prop => 0,
            MsgKind::Decide => 1,
        });
        self.x.encode(buf);
        self.graph.encode(buf);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let kind = match buf.get_u8() {
            0 => MsgKind::Prop,
            1 => MsgKind::Decide,
            _ => return Err(WireError::InvalidValue("unknown message kind")),
        };
        let x = Value::decode(buf)?;
        let graph = Arc::new(LabeledDigraph::decode(buf)?);
        Ok(KSetMsg { kind, x, graph })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_graph::ProcessId;

    fn sample_msg() -> KSetMsg {
        let mut g = LabeledDigraph::with_node(5, ProcessId::new(0));
        g.set_edge_max(ProcessId::new(1), ProcessId::new(0), 3);
        g.set_edge_max(ProcessId::new(0), ProcessId::new(0), 4);
        KSetMsg {
            kind: MsgKind::Prop,
            x: 42,
            graph: Arc::new(g),
        }
    }

    #[test]
    fn round_trips() {
        for kind in [MsgKind::Prop, MsgKind::Decide] {
            let mut m = sample_msg();
            m.kind = kind;
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.wire_bytes());
            let mut rd = bytes.clone();
            assert_eq!(KSetMsg::decode(&mut rd).unwrap(), m);
            assert!(!rd.has_remaining());
        }
    }

    #[test]
    fn rejects_bad_kind() {
        let mut bytes = sample_msg().to_bytes().to_vec();
        bytes[0] = 9;
        let mut rd = &bytes[..];
        assert!(matches!(
            KSetMsg::decode(&mut rd),
            Err(WireError::InvalidValue(_))
        ));
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let mut rd: &[u8] = &[];
        assert_eq!(KSetMsg::decode(&mut rd), Err(WireError::UnexpectedEnd));
    }
}
