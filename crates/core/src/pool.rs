//! Recycling pool for [`KSetAgreement`] instances.
//!
//! An agreement *service* (the multiplexed engine,
//! `sskel_model::run_multiplex_codec`) admits and retires whole instance
//! universes continuously. Constructing `n` fresh [`KSetAgreement`]
//! values per admission allocates two dense `n × n` labelled digraphs
//! plus the estimator scratch per process — by far the largest
//! allocation in the system. This pool keeps retired instances and
//! restores them in place ([`KSetAgreement::recycle`] →
//! [`crate::SkeletonEstimator::recycle`]), so steady-state instance churn
//! over a fixed universe size performs **zero graph allocations**: the
//! label matrices, bitset rows and scratch buffers of a decided run are
//! reused verbatim by the next one.
//!
//! Recycling is exact, not approximate: a recycled instance is
//! state-identical to a freshly constructed one, so runs spawned from the
//! pool produce byte-identical traces (pinned by the unit test below and
//! exercised at service scale by `tests/multiplex_conformance.rs`).

use sskel_model::{ProcessCtx, Value};

use crate::alg1::{DecisionRule, KSetAgreement, SpawnError};

/// A free list of retired [`KSetAgreement`] instances, keyed by universe
/// size at reuse time.
///
/// ```
/// use sskel_kset::{AgreementPool, DecisionRule};
///
/// let mut pool = AgreementPool::new();
/// let algs = pool
///     .spawn_all(3, &[30, 10, 20], DecisionRule::FreshnessGuarded)
///     .unwrap();
/// // ... run the instance to completion, then hand the algorithms back:
/// pool.retire(algs);
/// assert_eq!(pool.pooled(), 3);
/// // The next same-sized universe reuses the retired graph buffers.
/// let algs = pool
///     .spawn_all(3, &[7, 8, 9], DecisionRule::FreshnessGuarded)
///     .unwrap();
/// assert_eq!(pool.pooled(), 0);
/// # drop(algs);
/// ```
#[derive(Debug, Default)]
pub struct AgreementPool {
    free: Vec<KSetAgreement>,
}

impl AgreementPool {
    /// An empty pool.
    pub fn new() -> Self {
        AgreementPool::default()
    }

    /// Returns a run's algorithm instances to the free list for reuse.
    pub fn retire(&mut self, algs: Vec<KSetAgreement>) {
        self.free.extend(algs);
    }

    /// The number of retired instances currently available for reuse.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Instantiates a universe of `n` processes with the given inputs and
    /// decision rule, recycling same-`n` retirees where available and
    /// constructing the remainder fresh. State-identical to
    /// [`KSetAgreement::try_spawn_all_with`], reporting the same
    /// [`SpawnError`]s.
    pub fn spawn_all(
        &mut self,
        n: usize,
        inputs: &[Value],
        rule: DecisionRule,
    ) -> Result<Vec<KSetAgreement>, SpawnError> {
        if n == 0 {
            return Err(SpawnError::EmptyUniverse);
        }
        if inputs.len() != n {
            return Err(SpawnError::InputCountMismatch {
                expected: n,
                got: inputs.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for (i, &input) in inputs.iter().enumerate() {
            let ctx = ProcessCtx {
                id: sskel_graph::ProcessId::from_usize(i),
                n,
                input,
            };
            match self.free.iter().position(|a| a.universe() == n) {
                Some(pos) => {
                    let mut alg = self.free.swap_remove(pos);
                    alg.recycle(ctx, rule);
                    out.push(alg);
                }
                None => out.push(KSetAgreement::with_rule(ctx, rule)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_model::{run_lockstep, FixedSchedule, RoundAlgorithm, RunUntil};

    /// A pooled respawn must be indistinguishable from a fresh spawn: the
    /// recycled instances produce the same trace, decision set and final
    /// estimator graphs.
    #[test]
    fn recycled_instances_run_byte_identical_to_fresh() {
        let n = 5;
        let schedule = FixedSchedule::synchronous(n);
        let until = RunUntil::AllDecided { max_rounds: 20 };
        let first: Vec<Value> = (0..n as Value).map(|v| v * 3 + 1).collect();
        let second: Vec<Value> = (0..n as Value).rev().collect();
        let rule = DecisionRule::FreshnessGuarded;

        let mut pool = AgreementPool::new();
        let algs = pool.spawn_all(n, &first, rule).unwrap();
        let (_, used) = run_lockstep(&schedule, algs, until);
        pool.retire(used);
        assert_eq!(pool.pooled(), n);

        // Second wave from the pool vs. a fresh system on the same inputs.
        let pooled = pool.spawn_all(n, &second, rule).unwrap();
        assert_eq!(pool.pooled(), 0, "same-n retirees are reused, not leaked");
        let fresh = KSetAgreement::spawn_all_with(n, &second, rule);
        let (t_pooled, a_pooled) = run_lockstep(&schedule, pooled, until);
        let (t_fresh, a_fresh) = run_lockstep(&schedule, fresh, until);
        assert_eq!(t_pooled.decisions, t_fresh.decisions);
        assert_eq!(t_pooled.rounds_executed, t_fresh.rounds_executed);
        assert_eq!(t_pooled.msg_stats, t_fresh.msg_stats);
        for (p, f) in a_pooled.iter().zip(a_fresh.iter()) {
            assert_eq!(p.decision(), f.decision());
            assert_eq!(p.approx_graph(), f.approx_graph());
            assert_eq!(p.approx_graph().base(), f.approx_graph().base());
        }
    }

    /// A different universe size never reuses mismatched buffers.
    #[test]
    fn mismatched_universe_constructs_fresh() {
        let mut pool = AgreementPool::new();
        let algs = pool.spawn_all(3, &[1, 2, 3], DecisionRule::Paper).unwrap();
        pool.retire(algs);
        let bigger = pool
            .spawn_all(4, &[1, 2, 3, 4], DecisionRule::Paper)
            .unwrap();
        assert_eq!(bigger.len(), 4);
        assert_eq!(pool.pooled(), 3, "3-process retirees stay pooled");
        assert!(pool.spawn_all(0, &[], DecisionRule::Paper).is_err());
    }
}
