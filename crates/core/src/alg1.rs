//! Algorithm 1: approximating the stable skeleton graph and solving k-set
//! agreement with `Psrcs(k)`.
//!
//! Faithful implementation of the paper's pseudocode. Per round `r`, each
//! process `p`:
//!
//! * **send (lines 5–8)** — broadcasts `(prop|decide, x_p, G_p)`;
//! * **line 9** — `PT_p ← PT_p ∩ HO(p, r)` (eq. (7));
//! * **lines 10–13** — adopts a received decide value from some
//!   `q ∈ PT_p` and decides (when several arrive simultaneously, the
//!   smallest `(x_q, q)` is adopted; the paper leaves the choice open and
//!   its proofs work for any);
//! * **lines 14–25** — runs the [`SkeletonEstimator`];
//! * **line 27** — `x_p ← min { x_q | q ∈ PT_p }` over the values received
//!   this round (this includes `p`'s own broadcast value, as `p ∈ PT_p`);
//! * **lines 28–30** — if `r ≥ n` and `G_p` is strongly connected, decides
//!   on `x_p`.
//!
//! Note on line 28: the arXiv rendering prints the guard as `r > n`, but it
//! is `r ⩾ n` in context — Lemma 11 has root-component members decide at
//! round `rST + n − 1`, which equals `n` for runs that are stable from
//! round 1, and Lemma 14's "no process can pass the check in Line 28 before
//! round n" is consistent with `⩾`. See DESIGN.md ("Reading notes").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet, Round};
use sskel_model::wire::{read_uvarint, uvarint_len, write_uvarint};
use sskel_model::{ProcessCtx, Received, Recoverable, RoundAlgorithm, Value, Wire, WireError};

use crate::approx::SkeletonEstimator;
use crate::msg::{KSetMsg, MsgKind};

/// Which line-28 decision test to apply.
///
/// Reproducing the paper surfaced a soundness gap in its Lemma 15 (see
/// `tests/counterexample.rs` and EXPERIMENTS.md E8): the literal rule can
/// decide at round `r ∈ [n, 2n)` based on transient edges observed in the
/// first rounds of the run — which are too old to be perpetual but too
/// young to be purged — and thereby exceed `k` decision values in runs
/// where `Psrcs(k)` holds. [`DecisionRule::FreshnessGuarded`] additionally
/// requires every edge label to be as fresh as its propagation distance
/// allows (`s + dist(v → p) ≥ r`, the exact freshness Lemma 4 guarantees
/// for perpetual edges), which blocks the counterexample while preserving
/// the Lemma-11 termination bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecisionRule {
    /// Line 28 verbatim: `r ≥ n` and `G_p` strongly connected.
    #[default]
    Paper,
    /// Line 28 plus the coherent-freshness condition of
    /// [`SkeletonEstimator::is_coherently_fresh`].
    FreshnessGuarded,
}

/// Why instantiating a whole system of Algorithm 1 processes failed.
///
/// Returned by [`KSetAgreement::try_spawn_all`]; the panicking
/// [`KSetAgreement::spawn_all`] wrappers surface the same conditions as a
/// panic carrying this error's message (instead of the unhelpful
/// `unwrap`-style panic an empty input slice used to produce downstream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnError {
    /// `n == 0`: the paper's universe `Π = {p1, …, pn}` is non-empty, and
    /// an empty system has no inputs to agree on.
    EmptyUniverse,
    /// `inputs.len() != n`: every process needs exactly one input `v_p`.
    InputCountMismatch {
        /// The universe size `n`.
        expected: usize,
        /// The number of inputs actually supplied.
        got: usize,
    },
}

impl core::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpawnError::EmptyUniverse => {
                write!(
                    f,
                    "cannot spawn a k-set agreement system over an empty universe"
                )
            }
            SpawnError::InputCountMismatch { expected, got } => write!(
                f,
                "need exactly one input per process: universe has {expected}, got {got} inputs"
            ),
        }
    }
}

impl std::error::Error for SpawnError {}

/// How a process decided — useful for experiments and tests, not part of
/// the paper's interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionPath {
    /// Passed the strong-connectivity test (line 29).
    StronglyConnected,
    /// Adopted a decide message from its timely neighborhood (line 12).
    Relay,
}

/// One process's instance of Algorithm 1.
#[derive(Clone, Debug)]
pub struct KSetAgreement {
    me: ProcessId,
    n: usize,
    /// `PT_p` (line 1; initially `Π`).
    pt: ProcessSet,
    /// Estimated decision value `x_p` (line 2; initially `v_p`).
    x: Value,
    /// `decided_p` (line 4).
    decided: bool,
    decision: Option<Value>,
    path: Option<DecisionPath>,
    rule: DecisionRule,
    est: SkeletonEstimator,
}

impl KSetAgreement {
    /// A fresh instance for the given process context, with the paper's
    /// literal decision rule.
    pub fn new(ctx: ProcessCtx) -> Self {
        Self::with_rule(ctx, DecisionRule::Paper)
    }

    /// A fresh instance using the chosen decision rule.
    pub fn with_rule(ctx: ProcessCtx, rule: DecisionRule) -> Self {
        KSetAgreement {
            me: ctx.id,
            n: ctx.n,
            pt: ProcessSet::full(ctx.n),
            x: ctx.input,
            decided: false,
            decision: None,
            path: None,
            rule,
            est: SkeletonEstimator::new(ctx.n, ctx.id),
        }
    }

    /// Restores a retired instance to the exact state
    /// [`KSetAgreement::with_rule`]`(ctx, rule)` would construct — same
    /// universe, any process/input — without allocating: `PT_p` is
    /// refilled in place and the estimator's graph buffers are recycled
    /// ([`SkeletonEstimator::recycle`]). This is what [`crate::AgreementPool`]
    /// calls when an agreement service reuses a decided instance for a
    /// newly admitted one.
    ///
    /// # Panics
    /// Panics if `ctx.n` differs from this instance's universe size (pool
    /// entries are shape-keyed; a different `n` needs a fresh instance).
    pub fn recycle(&mut self, ctx: ProcessCtx, rule: DecisionRule) {
        assert_eq!(
            ctx.n, self.n,
            "recycle cannot change the universe size; spawn a fresh instance"
        );
        self.me = ctx.id;
        self.pt.clear();
        for p in ProcessId::all(self.n) {
            self.pt.insert(p);
        }
        self.x = ctx.input;
        self.decided = false;
        self.decision = None;
        self.path = None;
        self.rule = rule;
        self.est.recycle(ctx.id);
    }

    /// Instantiates the whole system: one instance per process, with
    /// `inputs[p]` as `v_p`.
    ///
    /// # Panics
    /// Panics on the conditions [`KSetAgreement::try_spawn_all`] reports as
    /// a [`SpawnError`]: an empty universe or an input count other than `n`.
    pub fn spawn_all(n: usize, inputs: &[Value]) -> Vec<Self> {
        Self::spawn_all_with(n, inputs, DecisionRule::Paper)
    }

    /// [`KSetAgreement::spawn_all`] with an explicit decision rule.
    ///
    /// # Panics
    /// Same conditions as [`KSetAgreement::spawn_all`].
    pub fn spawn_all_with(n: usize, inputs: &[Value], rule: DecisionRule) -> Vec<Self> {
        match Self::try_spawn_all_with(n, inputs, rule) {
            Ok(algs) => algs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`KSetAgreement::spawn_all`]: a typed error instead
    /// of a panic for empty or mis-sized input slices.
    pub fn try_spawn_all(n: usize, inputs: &[Value]) -> Result<Vec<Self>, SpawnError> {
        Self::try_spawn_all_with(n, inputs, DecisionRule::Paper)
    }

    /// Fallible form of [`KSetAgreement::spawn_all_with`].
    pub fn try_spawn_all_with(
        n: usize,
        inputs: &[Value],
        rule: DecisionRule,
    ) -> Result<Vec<Self>, SpawnError> {
        if n == 0 {
            return Err(SpawnError::EmptyUniverse);
        }
        if inputs.len() != n {
            return Err(SpawnError::InputCountMismatch {
                expected: n,
                got: inputs.len(),
            });
        }
        Ok(ProcessId::all(n)
            .map(|id| {
                KSetAgreement::with_rule(
                    ProcessCtx {
                        id,
                        n,
                        input: inputs[id.index()],
                    },
                    rule,
                )
            })
            .collect())
    }

    /// Overrides the estimator's delta-window rebase threshold — a
    /// test/bench knob for exercising the rebase path without simulating
    /// tens of thousands of rounds. Must be set identically on every
    /// process before the run starts; see
    /// [`SkeletonEstimator::set_rebase_limit`].
    ///
    /// # Panics
    /// Same conditions as [`SkeletonEstimator::set_rebase_limit`].
    pub fn set_rebase_limit(&mut self, limit: Round) {
        self.est.set_rebase_limit(limit);
    }

    /// The decision rule in effect.
    pub fn rule(&self) -> DecisionRule {
        self.rule
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The universe size `n` this instance was built for.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The current timely neighborhood `PT_p`.
    pub fn pt(&self) -> &ProcessSet {
        &self.pt
    }

    /// The current estimate `x_p`.
    pub fn estimate(&self) -> Value {
        self.x
    }

    /// The current approximation graph `G_p`.
    pub fn approx_graph(&self) -> &sskel_graph::LabeledDigraph {
        self.est.graph()
    }

    /// `decided_p` (line 4).
    pub fn has_decided(&self) -> bool {
        self.decided
    }

    /// How this process decided, if it has.
    pub fn decision_path(&self) -> Option<DecisionPath> {
        self.path
    }
}

impl RoundAlgorithm for KSetAgreement {
    type Msg = KSetMsg;

    // Lines 5–8. The graph payload is a shared handle to the estimator's
    // current buffer — broadcasting is O(1), not O(n²).
    fn send(&self, _r: Round) -> KSetMsg {
        KSetMsg::new(
            if self.decided {
                MsgKind::Decide
            } else {
                MsgKind::Prop
            },
            self.x,
            self.est.graph_arc(),
        )
    }

    fn receive(&mut self, r: Round, received: &Received<KSetMsg>) {
        // Line 9: PT_p ← PT_p ∩ HO(p, r).
        self.pt.intersect_with(received.senders());

        // Lines 10–13: adopt a decide message from PT_p.
        if !self.decided {
            let mut adopted: Option<Value> = None;
            for q in self.pt.iter() {
                if let Some(m) = received.get(q) {
                    if m.is_decide() {
                        adopted = Some(adopted.map_or(m.x(), |cur: Value| cur.min(m.x())));
                    }
                }
            }
            if let Some(v) = adopted {
                self.x = v;
                self.decided = true;
                self.decision = Some(v);
                self.path = Some(DecisionPath::Relay);
            }
        }

        // Lines 14–25: approximate the stable skeleton (runs every round,
        // decided or not — decided processes keep serving the approximation).
        self.est.update(
            r,
            &self.pt,
            self.pt
                .iter()
                .filter_map(|q| received.get(q).map(|m| (q, m.graph().as_ref()))),
        );

        // Lines 26–30.
        if !self.decided {
            // Line 27: x_p ← min { x_q | q ∈ PT_p } (from this round's
            // messages; includes p's own value since p ∈ PT_p).
            for q in self.pt.iter() {
                if let Some(m) = received.get(q) {
                    self.x = self.x.min(m.x());
                }
            }
            // Line 28: decide once the approximation is strongly connected
            // (plus the freshness guard when the repaired rule is active).
            let fresh_ok = match self.rule {
                DecisionRule::Paper => true,
                DecisionRule::FreshnessGuarded => self.est.is_coherently_fresh(r),
            };
            if r >= self.n as Round && self.est.is_strongly_connected() && fresh_ok {
                self.decided = true;
                self.decision = Some(self.x);
                self.path = Some(DecisionPath::StronglyConnected);
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }
}

/// Crash/restart checkpointing for the recovery engine
/// ([`sskel_model::engine::run_lockstep_recovering`]).
///
/// The snapshot reuses the wire codec end to end:
///
/// ```text
/// uvarint n · uvarint me · uvarint x · flags u8 · pt ProcessSet
///           · uvarint rebase_limit · G_p LabeledDigraph
/// ```
///
/// with `flags = decided | path_code << 1 | rule << 3` (path code 0 =
/// undecided, 1 = strongly-connected, 2 = relay). The decision value is
/// not stored separately: once `decided_p` holds, `x_p` never changes
/// (lines 26–30 are skipped), so `decision = x` is an invariant the
/// restore path re-derives.
impl Recoverable for KSetAgreement {
    fn snapshot(&self) -> Bytes {
        let g = self.est.graph();
        let mut buf = BytesMut::with_capacity(
            uvarint_len(self.n as u64)
                + uvarint_len(self.me.index() as u64)
                + sskel_model::WireSized::wire_bytes(&self.x)
                + 1
                + sskel_model::WireSized::wire_bytes(&self.pt)
                + uvarint_len(u64::from(self.est.rebase_limit()))
                + sskel_model::WireSized::wire_bytes(g),
        );
        write_uvarint(&mut buf, self.n as u64);
        write_uvarint(&mut buf, self.me.index() as u64);
        self.x.encode(&mut buf);
        let path_code: u8 = match self.path {
            None => 0,
            Some(DecisionPath::StronglyConnected) => 1,
            Some(DecisionPath::Relay) => 2,
        };
        let rule_bit: u8 = match self.rule {
            DecisionRule::Paper => 0,
            DecisionRule::FreshnessGuarded => 1,
        };
        buf.put_u8(u8::from(self.decided) | (path_code << 1) | (rule_bit << 3));
        self.pt.encode(&mut buf);
        write_uvarint(&mut buf, u64::from(self.est.rebase_limit()));
        g.encode(&mut buf);
        buf.freeze()
    }

    fn restore(bytes: &[u8]) -> Result<Self, WireError> {
        let mut rd = bytes;
        let n = read_uvarint(&mut rd)? as usize;
        if n == 0 {
            return Err(WireError::InvalidValue("snapshot of an empty universe"));
        }
        let me_idx = read_uvarint(&mut rd)? as usize;
        if me_idx >= n {
            return Err(WireError::InvalidValue("snapshot owner out of universe"));
        }
        let me = ProcessId::from_usize(me_idx);
        let x = Value::decode(&mut rd)?;
        if !rd.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let flags = rd.get_u8();
        if flags & !0b1111 != 0 {
            return Err(WireError::InvalidValue("unknown snapshot flag bits"));
        }
        let decided = flags & 1 != 0;
        let path = match (flags >> 1) & 0b11 {
            0 => None,
            1 => Some(DecisionPath::StronglyConnected),
            2 => Some(DecisionPath::Relay),
            _ => return Err(WireError::InvalidValue("unknown decision-path code")),
        };
        if decided == path.is_none() {
            return Err(WireError::InvalidValue(
                "decided flag disagrees with decision path",
            ));
        }
        let rule = if flags & 0b1000 != 0 {
            DecisionRule::FreshnessGuarded
        } else {
            DecisionRule::Paper
        };
        let pt = ProcessSet::decode(&mut rd)?;
        if pt.universe() != n {
            return Err(WireError::InvalidValue("snapshot PT universe mismatch"));
        }
        if !pt.contains(me) {
            return Err(WireError::InvalidValue("snapshot PT excludes its owner"));
        }
        let rebase_limit = read_uvarint(&mut rd)?;
        if rebase_limit <= n as u64 + 1 || rebase_limit > u64::from(u16::MAX) {
            return Err(WireError::InvalidValue(
                "snapshot rebase limit out of range",
            ));
        }
        let graph = LabeledDigraph::decode(&mut rd)?;
        if graph.universe() != n {
            return Err(WireError::InvalidValue("snapshot graph universe mismatch"));
        }
        if !graph.nodes().contains(me) {
            return Err(WireError::InvalidValue("snapshot graph lost its owner"));
        }
        if rd.has_remaining() {
            return Err(WireError::InvalidValue("trailing bytes in snapshot"));
        }
        Ok(KSetAgreement {
            me,
            n,
            pt,
            x,
            decided,
            decision: decided.then_some(x),
            path,
            rule,
            est: SkeletonEstimator::from_parts(n, me, graph, rebase_limit as Round),
        })
    }

    fn snapshot_due(&self, r: Round) -> bool {
        self.est.snapshot_due(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_model::{run_lockstep, FixedSchedule, RunUntil};
    use sskel_predicates::Theorem2Schedule;

    #[test]
    fn synchronous_run_reaches_consensus_at_round_n() {
        for n in [1usize, 2, 4, 7] {
            let inputs: Vec<Value> = (0..n as Value).map(|i| 100 - i).collect();
            let s = FixedSchedule::synchronous(n);
            let algs = KSetAgreement::spawn_all(n, &inputs);
            let (trace, finals) = run_lockstep(
                &s,
                algs,
                RunUntil::AllDecided {
                    max_rounds: 4 * n as Round + 4,
                },
            );
            assert!(trace.all_decided(), "n={n}");
            // consensus on the minimum input
            let min = *inputs.iter().min().unwrap();
            assert_eq!(trace.distinct_decision_values(), vec![min], "n={n}");
            // decision exactly at round n (skeleton is complete from round 1)
            assert_eq!(trace.last_decision_round(), Some(n as Round), "n={n}");
            assert!(finals
                .iter()
                .all(|a| a.decision_path() == Some(DecisionPath::StronglyConnected)));
            assert!(trace.anomalies.is_empty());
        }
    }

    #[test]
    fn theorem2_run_yields_exactly_k_values() {
        for (n, k) in [(5usize, 2usize), (6, 3), (8, 4)] {
            let s = Theorem2Schedule::new(n, k);
            let inputs: Vec<Value> = (0..n as Value).collect(); // pairwise distinct
            let algs = KSetAgreement::spawn_all(n, &inputs);
            let (trace, finals) = run_lockstep(
                &s,
                algs,
                RunUntil::AllDecided {
                    max_rounds: 4 * n as Round + 4,
                },
            );
            assert!(trace.all_decided(), "n={n} k={k}");
            let distinct = trace.distinct_decision_values();
            assert_eq!(distinct.len(), k, "n={n} k={k}: {distinct:?}");
            // L ∪ {s} decide their own values via strong connectivity;
            // everyone else relays s's decision
            for p in s.forced_own_value().iter() {
                assert_eq!(
                    trace.decision_of(p).unwrap().value,
                    inputs[p.index()],
                    "forced process {p}"
                );
            }
            for a in finals {
                let expected = if s.forced_own_value().contains(a.id()) {
                    DecisionPath::StronglyConnected
                } else {
                    DecisionPath::Relay
                };
                assert_eq!(a.decision_path(), Some(expected), "process {}", a.id());
            }
        }
    }

    #[test]
    fn no_decision_before_round_n() {
        let n = 5;
        let s = FixedSchedule::synchronous(n);
        let algs = KSetAgreement::spawn_all(n, &vec![7; n]);
        let (trace, _) = run_lockstep(&s, algs, RunUntil::Rounds(n as Round - 1));
        assert_eq!(
            trace.decided_count(),
            0,
            "Lemma 14: no decision before round n"
        );
    }

    #[test]
    fn estimates_are_monotone_while_undecided() {
        // Observation 2 on the line-27 path.
        let n = 4;
        let s = FixedSchedule::synchronous(n);
        let algs = KSetAgreement::spawn_all(n, &[9, 3, 7, 5]);
        let mut last: Vec<Value> = vec![Value::MAX; n];
        let (_, _) = sskel_model::run_lockstep_observed(
            &s,
            algs,
            RunUntil::Rounds(8),
            |_r, states: &[KSetAgreement]| {
                for (i, a) in states.iter().enumerate() {
                    if a.decision_path() != Some(DecisionPath::Relay) {
                        assert!(a.estimate() <= last[i], "estimate increased");
                    }
                    last[i] = a.estimate();
                }
            },
        );
    }

    #[test]
    fn spawn_rejects_empty_and_mismatched_inputs_with_typed_errors() {
        assert_eq!(
            KSetAgreement::try_spawn_all(0, &[]).unwrap_err(),
            SpawnError::EmptyUniverse
        );
        assert_eq!(
            KSetAgreement::try_spawn_all(3, &[1, 2]).unwrap_err(),
            SpawnError::InputCountMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            SpawnError::EmptyUniverse.to_string(),
            "cannot spawn a k-set agreement system over an empty universe"
        );
        assert!(SpawnError::InputCountMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("universe has 3, got 2"));
        let ok = KSetAgreement::try_spawn_all(2, &[5, 7]).expect("valid spawn");
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[1].estimate(), 7);
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn spawn_all_panic_is_descriptive_for_empty_systems() {
        let _ = KSetAgreement::spawn_all(0, &[]);
    }

    #[test]
    #[should_panic(expected = "one input per process")]
    fn spawn_all_panic_is_descriptive_for_mismatched_inputs() {
        let _ = KSetAgreement::spawn_all(4, &[1]);
    }

    #[test]
    fn validity_values_come_from_inputs() {
        let n = 6;
        let inputs: Vec<Value> = vec![11, 22, 33, 44, 55, 66];
        let s = Theorem2Schedule::new(n, 3);
        let algs = KSetAgreement::spawn_all(n, &inputs);
        let (trace, _) = run_lockstep(&s, algs, RunUntil::AllDecided { max_rounds: 40 });
        for d in trace.decisions.iter().flatten() {
            assert!(inputs.contains(&d.value), "decided {d:?} not an input");
        }
    }
}
