//! Run verification: the three k-set agreement properties plus the
//! engine-level sanity conditions, checked on every simulated run.
//!
//! * **k-Agreement** — at most `k` distinct decision values;
//! * **Validity** — every decision was some process's proposal;
//! * **Termination** — every process decides (within the Lemma-11 bound
//!   `rST + 2n − 1` when one is supplied);
//! * **decide-once** — no retraction or change (engine anomalies).

use sskel_graph::Round;
use sskel_model::{RunTrace, Schedule, Value};

/// What to check a trace against.
#[derive(Clone, Debug)]
pub struct VerifySpec {
    /// The agreement parameter `k ≥ 1`.
    pub k: usize,
    /// The proposal values (index = process index).
    pub inputs: Vec<Value>,
    /// If set, all decisions must have happened by this round.
    pub termination_bound: Option<Round>,
}

impl VerifySpec {
    /// Spec with no termination bound.
    pub fn new(k: usize, inputs: Vec<Value>) -> Self {
        VerifySpec {
            k,
            inputs,
            termination_bound: None,
        }
    }

    /// Adds the Lemma-11 termination bound `rST + 2n − 1` derived from a
    /// schedule's declared stabilization round.
    pub fn with_lemma11_bound<S: Schedule + ?Sized>(mut self, schedule: &S) -> Self {
        self.termination_bound = Some(lemma11_bound(schedule));
        self
    }
}

/// The Lemma-11 termination bound of a schedule: every process running
/// Algorithm 1 decides by round `rST + 2n − 1`.
pub fn lemma11_bound<S: Schedule + ?Sized>(schedule: &S) -> Round {
    schedule.stabilization_round() + 2 * schedule.n() as Round - 1
}

/// The verdict of [`verify`]: either clean, or a list of violations.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Human-readable violations; empty iff the run is correct.
    pub violations: Vec<String>,
    /// Number of distinct decision values observed.
    pub distinct_values: usize,
    /// Latest decision round observed, if any.
    pub last_decision_round: Option<Round>,
}

impl Verdict {
    /// `true` iff no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with all violations if any were found (for tests).
    #[track_caller]
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "run verification failed:\n  {}",
            self.violations.join("\n  ")
        );
    }
}

/// Checks a trace against a spec.
pub fn verify(trace: &RunTrace, spec: &VerifySpec) -> Verdict {
    let mut violations = Vec::new();

    if spec.inputs.len() != trace.n {
        violations.push(format!(
            "spec has {} inputs but the trace has {} processes",
            spec.inputs.len(),
            trace.n
        ));
    }

    // Termination.
    for (i, d) in trace.decisions.iter().enumerate() {
        match d {
            None => violations.push(format!(
                "termination: process p{} never decided (ran {} rounds)",
                i + 1,
                trace.rounds_executed
            )),
            Some(rec) => {
                if let Some(bound) = spec.termination_bound {
                    if rec.round > bound {
                        violations.push(format!(
                            "termination: p{} decided at round {} > bound {bound}",
                            i + 1,
                            rec.round
                        ));
                    }
                }
            }
        }
    }

    // Validity.
    for (i, d) in trace.decisions.iter().enumerate() {
        if let Some(rec) = d {
            if !spec.inputs.contains(&rec.value) {
                violations.push(format!(
                    "validity: p{} decided {}, which no process proposed",
                    i + 1,
                    rec.value
                ));
            }
        }
    }

    // k-Agreement.
    let distinct = trace.distinct_decision_values();
    if distinct.len() > spec.k {
        violations.push(format!(
            "k-agreement: {} distinct values {:?} exceed k = {}",
            distinct.len(),
            distinct,
            spec.k
        ));
    }

    // Engine-observed anomalies (decision changes).
    for a in &trace.anomalies {
        violations.push(format!("decide-once: {a}"));
    }

    Verdict {
        violations,
        distinct_values: distinct.len(),
        last_decision_round: trace.last_decision_round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::KSetAgreement;
    use sskel_model::{run_lockstep, FixedSchedule, RunUntil};
    use sskel_predicates::Theorem2Schedule;

    #[test]
    fn clean_synchronous_run_verifies() {
        let n = 5;
        let inputs: Vec<Value> = vec![5, 4, 3, 2, 1];
        let s = FixedSchedule::synchronous(n);
        let (trace, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &inputs),
            RunUntil::AllDecided { max_rounds: 30 },
        );
        let spec = VerifySpec::new(1, inputs).with_lemma11_bound(&s);
        let v = verify(&trace, &spec);
        v.assert_ok();
        assert_eq!(v.distinct_values, 1);
    }

    #[test]
    fn bound_is_rst_plus_2n_minus_1() {
        let s = FixedSchedule::synchronous(4);
        assert_eq!(lemma11_bound(&s), 1 + 8 - 1);
        let t2 = Theorem2Schedule::new(6, 3);
        assert_eq!(lemma11_bound(&t2), 1 + 12 - 1);
    }

    #[test]
    fn catches_missing_termination() {
        let n = 3;
        let s = FixedSchedule::synchronous(n);
        // stop before round n: nobody decides
        let (trace, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &[1, 2, 3]),
            RunUntil::Rounds(1),
        );
        let v = verify(&trace, &VerifySpec::new(1, vec![1, 2, 3]));
        assert!(!v.is_ok());
        assert_eq!(v.violations.len(), 3);
        assert!(v.violations[0].contains("termination"));
    }

    #[test]
    fn catches_k_agreement_excess() {
        let n = 6;
        let inputs: Vec<Value> = (0..6).collect();
        let s = Theorem2Schedule::new(n, 3);
        let (trace, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &inputs),
            RunUntil::AllDecided { max_rounds: 40 },
        );
        // the run legitimately produces 3 values; claiming k = 2 must fail
        let v = verify(&trace, &VerifySpec::new(2, inputs.clone()));
        assert!(!v.is_ok());
        assert!(v.violations.iter().any(|m| m.contains("k-agreement")));
        // and k = 3 passes
        verify(&trace, &VerifySpec::new(3, inputs)).assert_ok();
    }

    #[test]
    fn catches_validity_breach() {
        let n = 3;
        let s = FixedSchedule::synchronous(n);
        let (trace, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &[10, 20, 30]),
            RunUntil::AllDecided { max_rounds: 20 },
        );
        // lie about the inputs: decided min (10) is no longer "proposed"
        let v = verify(&trace, &VerifySpec::new(1, vec![99, 98, 97]));
        assert!(v.violations.iter().any(|m| m.contains("validity")));
    }
}
