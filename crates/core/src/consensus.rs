//! Consensus as the `k = 1` special case.
//!
//! Algorithm 1 takes no `k` parameter — the number of decision values is
//! bounded by the *system*: under `Psrcs(k)` at most `k` values emerge
//! (Theorem 16), so under `Psrcs(1)` the very same algorithm solves
//! consensus ("the algorithm actually solves consensus in sufficiently
//! well-behaved runs", §V). This module provides the predicate-side helpers
//! for that reading.

use sskel_model::Schedule;
use sskel_predicates::{min_k_on_skeleton, CommPredicate, Psrcs};

/// `true` iff Algorithm 1 is guaranteed to reach *consensus* (one decision
/// value) on this schedule: `Psrcs(1)` holds on its stable skeleton.
pub fn guarantees_consensus<S: Schedule + ?Sized>(schedule: &S) -> bool {
    Psrcs::new(1).holds_on_skeleton(&schedule.stable_skeleton())
}

/// The strongest agreement guarantee for this schedule: the smallest `k`
/// with `Psrcs(k)`, i.e. Algorithm 1 decides at most this many values.
pub fn guaranteed_k<S: Schedule + ?Sized>(schedule: &S) -> usize {
    min_k_on_skeleton(&schedule.stable_skeleton())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::KSetAgreement;
    use sskel_graph::ProcessId;
    use sskel_model::{run_lockstep, FixedSchedule, RunUntil, Value};
    use sskel_predicates::{CrashSchedule, PartitionSchedule, Theorem2Schedule};

    #[test]
    fn synchronous_and_crash_runs_guarantee_consensus() {
        assert!(guarantees_consensus(&FixedSchedule::synchronous(5)));
        assert_eq!(guaranteed_k(&FixedSchedule::synchronous(5)), 1);
        // crashes with at least one survivor keep a perpetual common source
        let s = CrashSchedule::new(5, vec![(ProcessId::new(0), 1), (ProcessId::new(1), 3)]);
        assert!(guarantees_consensus(&s));
    }

    #[test]
    fn partitions_and_theorem2_do_not() {
        assert_eq!(guaranteed_k(&PartitionSchedule::even(9, 3, 1)), 3);
        assert!(!guarantees_consensus(&PartitionSchedule::even(9, 3, 1)));
        assert_eq!(guaranteed_k(&Theorem2Schedule::new(7, 4)), 4);
    }

    #[test]
    fn guarantee_is_achieved_by_algorithm_1() {
        // run Algorithm 1 on a guaranteed-consensus crash schedule
        let s = CrashSchedule::new(4, vec![(ProcessId::new(2), 2)]);
        let inputs: Vec<Value> = vec![4, 3, 2, 1];
        let (trace, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(4, &inputs),
            RunUntil::AllDecided { max_rounds: 30 },
        );
        assert!(trace.all_decided());
        assert_eq!(trace.distinct_decision_values().len(), 1);
    }
}
