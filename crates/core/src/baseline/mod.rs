//! Baseline algorithms for comparison with Algorithm 1.
//!
//! The paper implements no comparison system, but positioning Algorithm 1
//! requires concrete alternatives:
//!
//! * [`floodmin::FloodMin`] — the classic synchronous k-set agreement
//!   algorithm for the crash model (`⌊f/k⌋ + 1` rounds of flooding the
//!   minimum). Faster in benign crash runs, but **unsound** under general
//!   `Psrcs(k)` schedules, which admit non-crash omission patterns;
//! * [`naive_min::NaiveMinHorizon`] — flood-min with a fixed `n − 1` round
//!   horizon and no graph reasoning. Solves consensus in fully synchronous
//!   runs, yet violates k-agreement on `Psrcs(k)`-admissible runs —
//!   demonstrating why Algorithm 1's skeleton approximation is necessary.

pub mod floodmin;
pub mod naive_min;

pub use floodmin::FloodMin;
pub use naive_min::NaiveMinHorizon;
