//! NaiveMinHorizon: flood the minimum for `n − 1` rounds, then decide.
//!
//! In a fully synchronous system this solves consensus (every value reaches
//! everyone within `n − 1` rounds). Under `Psrcs(k)` schedules it is
//! *unsound*: with no skeleton reasoning, a process cannot tell whether the
//! values it saw are all it will ever see, and the tests demonstrate runs
//! where it emits **more than `k`** distinct decisions while Algorithm 1
//! stays within `k` — the motivating failure that Algorithm 1's
//! strongly-connected-approximation test repairs.

use sskel_graph::Round;
use sskel_model::{ProcessCtx, Received, RoundAlgorithm, Value};

/// One process's naive flood-min instance.
#[derive(Clone, Debug)]
pub struct NaiveMinHorizon {
    x: Value,
    horizon: Round,
    decision: Option<Value>,
}

impl NaiveMinHorizon {
    /// Horizon defaults to `max(n − 1, 1)` rounds.
    pub fn new(ctx: ProcessCtx) -> Self {
        NaiveMinHorizon {
            x: ctx.input,
            horizon: (ctx.n as Round - 1).max(1),
            decision: None,
        }
    }

    /// The whole system.
    pub fn spawn_all(n: usize, inputs: &[Value]) -> Vec<Self> {
        assert_eq!(inputs.len(), n);
        sskel_graph::ProcessId::all(n)
            .map(|id| {
                NaiveMinHorizon::new(ProcessCtx {
                    id,
                    n,
                    input: inputs[id.index()],
                })
            })
            .collect()
    }
}

impl RoundAlgorithm for NaiveMinHorizon {
    type Msg = Value;

    fn send(&self, _r: Round) -> Value {
        self.x
    }

    fn receive(&mut self, r: Round, received: &Received<Value>) {
        for (_, &v) in received.iter() {
            self.x = self.x.min(v);
        }
        if r >= self.horizon && self.decision.is_none() {
            self.decision = Some(self.x);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::KSetAgreement;
    use sskel_model::{run_lockstep, FixedSchedule, RunUntil};
    use sskel_predicates::Theorem2Schedule;

    #[test]
    fn solves_consensus_in_synchronous_runs() {
        let n = 5;
        let inputs = vec![9, 8, 7, 6, 5];
        let s = FixedSchedule::synchronous(n);
        let (trace, _) = run_lockstep(
            &s,
            NaiveMinHorizon::spawn_all(n, &inputs),
            RunUntil::AllDecided { max_rounds: 20 },
        );
        assert_eq!(trace.distinct_decision_values(), vec![5]);
    }

    /// The motivating failure: on a `Psrcs(2)`-admissible run the naive
    /// algorithm produces 3 distinct values where Algorithm 1 produces 2.
    #[test]
    fn violates_k_agreement_where_algorithm_1_does_not() {
        let n = 4;
        let k = 2;
        // L = {p1}, s = p2, p3/p4 hear {self, s}
        let s = Theorem2Schedule::new(n, k);
        // inputs chosen so that min(v_s, v_p3) ≠ v_s: p3's own value is
        // smaller than the source's
        let inputs: Vec<Value> = vec![0, 5, 1, 9];

        let (naive, _) = run_lockstep(
            &s,
            NaiveMinHorizon::spawn_all(n, &inputs),
            RunUntil::AllDecided { max_rounds: 20 },
        );
        let naive_vals = naive.distinct_decision_values();
        assert!(
            naive_vals.len() > k,
            "expected a k-agreement violation, got {naive_vals:?}"
        );

        let (alg1, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &inputs),
            RunUntil::AllDecided { max_rounds: 20 },
        );
        assert!(alg1.distinct_decision_values().len() <= k);
    }
}
