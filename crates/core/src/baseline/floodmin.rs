//! FloodMin: the classic synchronous k-set agreement algorithm for the
//! crash-fault model (Chaudhuri's problem setting; the algorithm is
//! standard, see e.g. Lynch, *Distributed Algorithms*, §7/23).
//!
//! With at most `f` crash faults, every process floods the minimum value it
//! has seen for `⌊f/k⌋ + 1` rounds and then decides it. Correctness rests
//! on a round in which no process crashes ("clean round") existing in every
//! window of `⌊f/k⌋ + 1` rounds — a property of crash schedules that
//! general `Psrcs(k)` schedules do **not** have, which is exactly what the
//! baseline experiments demonstrate.

use sskel_graph::Round;
use sskel_model::{ProcessCtx, Received, RoundAlgorithm, Value};

/// One process's FloodMin instance.
#[derive(Clone, Debug)]
pub struct FloodMin {
    x: Value,
    horizon: Round,
    decision: Option<Value>,
}

impl FloodMin {
    /// FloodMin for a system tolerating `f` crashes while allowing `k`
    /// distinct decisions: runs `⌊f/k⌋ + 1` rounds.
    pub fn new(ctx: ProcessCtx, f: usize, k: usize) -> Self {
        assert!(k >= 1, "k ≥ 1");
        FloodMin {
            x: ctx.input,
            horizon: (f / k) as Round + 1,
            decision: None,
        }
    }

    /// The whole system.
    pub fn spawn_all(n: usize, inputs: &[Value], f: usize, k: usize) -> Vec<Self> {
        assert_eq!(inputs.len(), n);
        sskel_graph::ProcessId::all(n)
            .map(|id| {
                FloodMin::new(
                    ProcessCtx {
                        id,
                        n,
                        input: inputs[id.index()],
                    },
                    f,
                    k,
                )
            })
            .collect()
    }

    /// The number of rounds this instance runs before deciding.
    pub fn horizon(&self) -> Round {
        self.horizon
    }
}

impl RoundAlgorithm for FloodMin {
    type Msg = Value;

    fn send(&self, _r: Round) -> Value {
        self.x
    }

    fn receive(&mut self, r: Round, received: &Received<Value>) {
        for (_, &v) in received.iter() {
            self.x = self.x.min(v);
        }
        if r >= self.horizon && self.decision.is_none() {
            self.decision = Some(self.x);
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_graph::ProcessId;
    use sskel_model::{run_lockstep, RunUntil};
    use sskel_predicates::CrashSchedule;

    fn p(i: usize) -> ProcessId {
        ProcessId::from_usize(i)
    }

    fn run(n: usize, f: usize, k: usize, crashes: Vec<(ProcessId, Round)>) -> Vec<Value> {
        let inputs: Vec<Value> = (1..=n as Value).collect();
        let s = CrashSchedule::new(n, crashes);
        let algs = FloodMin::spawn_all(n, &inputs, f, k);
        let (trace, _) = run_lockstep(&s, algs, RunUntil::AllDecided { max_rounds: 50 });
        assert!(trace.all_decided());
        trace.distinct_decision_values()
    }

    #[test]
    fn fault_free_reaches_consensus_in_one_round() {
        let vals = run(5, 0, 1, vec![]);
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn consensus_with_f_crashes_needs_f_plus_1_rounds() {
        // f = 2, k = 1 ⇒ horizon 3; worst-case staggered crashes
        let vals = run(5, 2, 1, vec![(p(0), 1), (p(1), 2)]);
        assert_eq!(vals.len(), 1, "consensus must hold: {vals:?}");
    }

    #[test]
    fn k_set_agreement_with_fewer_rounds() {
        // f = 4, k = 2 ⇒ horizon 3 rounds; at most 2 values
        let vals = run(6, 4, 2, vec![(p(0), 1), (p(1), 1), (p(2), 2), (p(3), 3)]);
        assert!(vals.len() <= 2, "k-agreement violated: {vals:?}");
    }

    #[test]
    fn adversarial_staggered_crash_can_split_without_enough_rounds() {
        // With f = 1 but horizon computed for f = 0 (1 round), a crash mid-
        // broadcast is *not* modeled here (clean crashes), so one crashed
        // sender in round 1 already shows the dependence on the horizon:
        // p1 (holding the minimum) crashes after round 1 delivered its value
        // to everyone — consensus still holds in this benign case.
        let vals = run(4, 1, 1, vec![(p(0), 1)]);
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn horizon_formula() {
        let mk = |f, k| {
            FloodMin::new(
                ProcessCtx {
                    id: p(0),
                    n: 4,
                    input: 0,
                },
                f,
                k,
            )
            .horizon()
        };
        assert_eq!(mk(0, 1), 1);
        assert_eq!(mk(3, 1), 4);
        assert_eq!(mk(3, 2), 2);
        assert_eq!(mk(4, 2), 3);
        assert_eq!(mk(5, 3), 2);
    }
}
