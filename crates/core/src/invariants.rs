//! Round-by-round checkers for the paper's approximation lemmas.
//!
//! [`InvariantChecker`] is fed every round of a run (via
//! [`sskel_model::run_lockstep_observed`]) together with the algorithm
//! states, and validates, against the ground-truth skeleton it tracks
//! itself:
//!
//! * **Observation 1** — `p ∈ G_p^r` and no edge label `s ≤ r − n`;
//! * **Lemma 3** — `q ∈ PT(p, r)` iff `G_p^r` has the edge `(q --r--> p)`
//!   (with that exact label, uniquely);
//! * **Lemma 5** — for `r ≥ n`: `C^r_p ⊆ G_p^r` (nodes and edges);
//! * **Lemma 6** — every edge `(q' --s--> q) ∈ G_p^r` satisfies
//!   `q' ∈ PT(q, s)`;
//! * **Lemma 7 / Theorem 8** — if `G_p^r` is strongly connected (`r ≥ n`),
//!   then `G_p^r ⊆ C^{r−n+1}_p`, and `G_p^r` is closed under the stable
//!   skeleton's strongly connected components;
//! * **Observation 2** — estimates never increase while undecided.
//!
//! These checks are *independent* of the algorithm's own data structures:
//! the checker recomputes skeletons from the schedule's graphs.

use sskel_graph::{is_strongly_connected, tarjan, Digraph, ProcessId, ProcessSet, Round};
use sskel_model::{SkeletonTracker, Value};

use crate::alg1::{DecisionPath, KSetAgreement};

/// Accumulates violations of the paper's lemmas over a run.
#[derive(Debug)]
pub struct InvariantChecker {
    n: usize,
    tracker: SkeletonTracker,
    /// `skeleton_history[r - 1]` = `G∩r` (ground truth).
    skeleton_history: Vec<Digraph>,
    /// Declared stable skeleton, for the Theorem 8 closure check.
    stable: Digraph,
    last_estimate: Vec<Value>,
    violations: Vec<String>,
}

impl InvariantChecker {
    /// A checker for a universe of size `n` with the given declared stable
    /// skeleton.
    pub fn new(n: usize, stable_skeleton: Digraph) -> Self {
        InvariantChecker {
            n,
            tracker: SkeletonTracker::new(n),
            skeleton_history: Vec::new(),
            stable: stable_skeleton,
            last_estimate: vec![Value::MAX; n],
            violations: Vec::new(),
        }
    }

    /// The violations found so far (empty = all invariants hold).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Panics if any violation was recorded.
    #[track_caller]
    pub fn assert_ok(&self) {
        assert!(
            self.violations.is_empty(),
            "lemma invariants violated:\n  {}",
            self.violations.join("\n  ")
        );
    }

    fn fail(&mut self, msg: String) {
        self.violations.push(msg);
    }

    /// Feeds one completed round: the round number, that round's
    /// communication graph, and the post-transition algorithm states.
    pub fn observe_round(&mut self, r: Round, g_r: &Digraph, algs: &[KSetAgreement]) {
        assert_eq!(algs.len(), self.n);
        self.tracker.observe(g_r);
        self.skeleton_history.push(self.tracker.current().clone());
        let skel_r = self.tracker.current().clone();
        let full = ProcessSet::full(self.n);
        let scc_r = tarjan(&skel_r, &full);
        // skeleton at round max(1, r − n + 1) for the Lemma 7 check
        let back_round = r.saturating_sub(self.n as Round - 1).max(1);
        let skel_back = self.skeleton_history[(back_round - 1) as usize].clone();
        let scc_back = tarjan(&skel_back, &full);
        let scc_stable = tarjan(&self.stable, &full);

        for (i, alg) in algs.iter().enumerate() {
            let p = ProcessId::from_usize(i);
            let gp = alg.approx_graph();

            // --- Observation 1 ---
            if !gp.contains_node(p) {
                self.fail(format!("Obs.1: round {r}: {p} ∉ G_{p}"));
            }
            if let Some(min) = gp.min_label() {
                if min + self.n as Round <= r {
                    self.fail(format!(
                        "Obs.1: round {r}: stale label {min} ≤ r − n in G_{p}"
                    ));
                }
            }

            // --- Lemma 3: q ∈ PT(p, r) ⟺ (q --r--> p) ∈ G_p^r ---
            let pt_true = skel_r.in_neighbors(p);
            if alg.pt() != pt_true {
                self.fail(format!(
                    "eq.(7): round {r}: PT_{p} = {} but skeleton says {}",
                    alg.pt(),
                    pt_true
                ));
            }
            for q in ProcessId::all(self.n) {
                let lbl = gp.label(q, p);
                if pt_true.contains(q) {
                    if lbl != Some(r) {
                        self.fail(format!(
                            "Lemma 3: round {r}: edge ({q} → {p}) has label {lbl:?}, expected {r}"
                        ));
                    }
                } else if lbl == Some(r) {
                    self.fail(format!(
                        "Lemma 3: round {r}: fresh edge ({q} → {p}) though {q} ∉ PT({p},{r})"
                    ));
                }
            }

            // --- Lemma 5: r ≥ n ⇒ C^r_p ⊆ G_p (nodes and edges) ---
            if r >= self.n as Round {
                let comp = scc_r.component_of(p).expect("p is always in the skeleton");
                if !comp.is_subset_of(gp.nodes()) {
                    self.fail(format!(
                        "Lemma 5: round {r}: C^r_{p} = {comp} ⊄ nodes of G_{p} = {}",
                        gp.nodes()
                    ));
                } else {
                    for u in comp.iter() {
                        for v in comp.iter() {
                            if skel_r.has_edge(u, v) && !gp.has_edge(u, v) {
                                self.fail(format!(
                                    "Lemma 5: round {r}: edge ({u} → {v}) of C^r_{p} missing in G_{p}"
                                ));
                            }
                        }
                    }
                }
            }

            // --- Lemma 6: every edge (q' --s--> q) means q' ∈ PT(q, s) ---
            for (u, v, s) in gp.edges() {
                let hist = &self.skeleton_history[(s - 1) as usize];
                if !hist.has_edge(u, v) {
                    self.fail(format!(
                        "Lemma 6: round {r}: edge ({u} --{s}--> {v}) in G_{p} but {u} ∉ PT({v},{s})"
                    ));
                }
            }

            // --- Lemma 7 + Theorem 8 on strongly connected approximations ---
            if r >= self.n as Round && is_strongly_connected(gp, gp.nodes()) {
                // Lemma 7: G_p ⊆ C^{r−n+1}_p
                let comp_back = scc_back
                    .component_of(p)
                    .expect("p is always in the skeleton");
                if !gp.nodes().is_subset_of(comp_back) {
                    self.fail(format!(
                        "Lemma 7: round {r}: SC G_{p} nodes {} ⊄ C^{back_round}_{p} = {comp_back}",
                        gp.nodes()
                    ));
                }
                for (u, v, _) in gp.edges() {
                    if !skel_back.has_edge(u, v) {
                        self.fail(format!(
                            "Lemma 7: round {r}: SC G_{p} edge ({u} → {v}) not in G∩{back_round}"
                        ));
                    }
                }
                // Theorem 8: closure under stable-skeleton components,
                // applicable once the ground truth has stabilized (the
                // theorem's C^∞; before stabilization C^r ⊇ C^∞ and the
                // check would be premature).
                if skel_r == self.stable {
                    for q in gp.nodes().iter() {
                        let cq = scc_stable
                            .component_of(q)
                            .expect("q is in the stable skeleton");
                        if !cq.is_subset_of(gp.nodes()) {
                            self.fail(format!(
                                "Thm 8: round {r}: SC G_{p} contains {q} but not all of C^∞_{q} = {cq}"
                            ));
                        }
                    }
                }
            }

            // --- Observation 2: monotone estimates while undecided ---
            if alg.decision_path() != Some(DecisionPath::Relay)
                && alg.estimate() > self.last_estimate[i]
            {
                self.fail(format!(
                    "Obs.2: round {r}: estimate of {p} rose from {} to {}",
                    self.last_estimate[i],
                    alg.estimate()
                ));
            }
            self.last_estimate[i] = alg.estimate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::KSetAgreement;
    use sskel_model::{run_lockstep_observed, RunUntil, Schedule};
    use sskel_predicates::{NoisySchedule, PartitionSchedule, Theorem2Schedule};

    fn check_run<S: Schedule>(s: &S, inputs: &[Value], rounds: Round) {
        let n = s.n();
        let mut checker = InvariantChecker::new(n, s.stable_skeleton());
        let algs = KSetAgreement::spawn_all(n, inputs);
        let (_, _) = run_lockstep_observed(
            s,
            algs,
            RunUntil::Rounds(rounds),
            |r, states: &[KSetAgreement]| {
                checker.observe_round(r, &s.graph(r), states);
            },
        );
        checker.assert_ok();
    }

    #[test]
    fn invariants_hold_on_synchronous_run() {
        let s = sskel_model::FixedSchedule::synchronous(5);
        check_run(&s, &[5, 4, 3, 2, 1], 12);
    }

    #[test]
    fn invariants_hold_on_theorem2_run() {
        let s = Theorem2Schedule::new(6, 3);
        check_run(&s, &[0, 1, 2, 3, 4, 5], 16);
    }

    #[test]
    fn invariants_hold_on_partitioned_run() {
        let s = PartitionSchedule::even(6, 2, 2);
        check_run(&s, &[9, 8, 7, 6, 5, 4], 16);
    }

    #[test]
    fn invariants_hold_under_noise() {
        let mut skel = Digraph::empty(5);
        skel.add_self_loops();
        for i in 0..4 {
            skel.add_edge(ProcessId::from_usize(i), ProcessId::from_usize(i + 1));
        }
        skel.add_edge(ProcessId::new(4), ProcessId::new(0));
        let s = NoisySchedule::new(skel, 350, 4, 1234);
        check_run(&s, &[1, 2, 3, 4, 5], 20);
    }
}
