//! # sskel-kset — Algorithm 1: stable-skeleton approximation and k-set
//! agreement
//!
//! The primary contribution of *“Solving k-Set Agreement with Stable
//! Skeleton Graphs”* (Biely, Robinson, Schmid, IPDPS-W 2011):
//!
//! * [`approx::SkeletonEstimator`] — the generic, predicate-independent
//!   approximation of the stable skeleton `G∩∞` (Algorithm 1 lines 14–25;
//!   correct in all runs, Lemmas 3–8);
//! * [`alg1::KSetAgreement`] — the full Algorithm 1, which decides once its
//!   approximation becomes strongly connected (`r ≥ n`), achieving k-set
//!   agreement in every run satisfying `Psrcs(k)` (Theorem 16);
//! * [`mod@verify`] — run verification of the three problem properties with the
//!   Lemma-11 termination bound `rST + 2n − 1`;
//! * [`invariants::InvariantChecker`] — round-by-round validation of
//!   Observation 1/2, Lemmas 3, 5, 6, 7 and Theorem 8 against
//!   ground-truth skeletons;
//! * [`baseline`] — FloodMin (crash-model k-set agreement) and a naive
//!   fixed-horizon flooder that demonstrably violates k-agreement on
//!   `Psrcs(k)` runs.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the paper-to-code
//! map covering every public module.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod alg1;
// The parallel estimator batch shares `&Digraph` rows across a scoped
// worker pool through a raw-pointer window; the three audited sites carry
// SAFETY comments and `sskel-lint` enforces them (see
// docs/STATIC_ANALYSIS.md). Every other module is unsafe-free under the
// crate-wide deny above.
#[allow(unsafe_code)]
pub mod approx;
pub mod baseline;
pub mod consensus;
pub mod invariants;
pub mod msg;
pub mod pool;
pub mod verify;

pub use alg1::{DecisionPath, DecisionRule, KSetAgreement, SpawnError};
pub use approx::SkeletonEstimator;
pub use baseline::{FloodMin, NaiveMinHorizon};
pub use invariants::InvariantChecker;
pub use msg::{KSetMsg, MsgKind};
pub use pool::AgreementPool;
pub use verify::{lemma11_bound, verify, Verdict, VerifySpec};
