//! Cross-layout differential test for the estimator: the production
//! [`SkeletonEstimator`] (delta-compressed `u16` label matrix, canonical
//! rebase schedule) against a from-scratch `u32` reference implementation
//! of Algorithm 1 lines 14–25 that stores absolute labels and never
//! rebases.
//!
//! Both are driven through the same randomized communication patterns for
//! enough rounds — with the production estimator's rebase limit forced low
//! — to cross many rebase boundaries; after every round, every process's
//! approximation must agree **exactly** (node sets and labels).

use proptest::prelude::*;

use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet, Round};
use sskel_kset::SkeletonEstimator;

/// Reference approximation graph: absolute `u32` labels, naive ops.
#[derive(Clone)]
struct RefGraph {
    n: usize,
    nodes: Vec<bool>,
    labels: Vec<Round>,
}

impl RefGraph {
    fn single(n: usize, p: usize) -> Self {
        let mut g = RefGraph {
            n,
            nodes: vec![false; n],
            labels: vec![0; n * n],
        };
        g.nodes[p] = true;
        g
    }

    fn set_edge_max(&mut self, u: usize, v: usize, l: Round) {
        self.nodes[u] = true;
        self.nodes[v] = true;
        let c = &mut self.labels[u * self.n + v];
        *c = (*c).max(l);
    }

    fn merge_max(&mut self, other: &RefGraph) {
        for (a, &b) in self.nodes.iter_mut().zip(&other.nodes) {
            *a |= b;
        }
        for (a, &b) in self.labels.iter_mut().zip(&other.labels) {
            *a = (*a).max(b);
        }
    }

    fn purge_labels_le(&mut self, cutoff: Round) {
        for c in &mut self.labels {
            if *c <= cutoff {
                *c = 0;
            }
        }
    }

    fn retain_reaching(&mut self, target: usize) {
        let mut reaches = vec![false; self.n];
        reaches[target] = true;
        for _ in 0..self.n {
            for u in 0..self.n {
                for v in 0..self.n {
                    if self.nodes[u]
                        && self.nodes[v]
                        && self.labels[u * self.n + v] != 0
                        && reaches[v]
                    {
                        reaches[u] = true;
                    }
                }
            }
        }
        for (p, &r) in reaches.iter().enumerate() {
            if self.nodes[p] && !r {
                self.nodes[p] = false;
                for q in 0..self.n {
                    self.labels[p * self.n + q] = 0;
                    self.labels[q * self.n + p] = 0;
                }
            }
        }
        self.nodes[target] = true;
    }
}

/// Reference estimator: Algorithm 1 lines 14–25, verbatim and windowless.
struct RefEstimator {
    me: usize,
    n: usize,
    g: RefGraph,
}

impl RefEstimator {
    fn new(n: usize, me: usize) -> Self {
        RefEstimator {
            me,
            n,
            g: RefGraph::single(n, me),
        }
    }

    /// One round: `received` holds `(q, G_q^{r−1})` for every `q ∈ PT_p`.
    fn update(&mut self, r: Round, received: &[(usize, RefGraph)]) {
        let mut g = RefGraph::single(self.n, self.me); // line 15
        for (q, gq) in received {
            g.set_edge_max(*q, self.me, r); // lines 16–17
            g.merge_max(gq); // lines 18–23
        }
        let cutoff = r.saturating_sub(self.n as Round); // line 24
        if cutoff >= 1 {
            g.purge_labels_le(cutoff);
        }
        g.retain_reaching(self.me); // line 25
        self.g = g;
    }
}

/// Production graph == reference graph, label for label.
fn assert_graphs_equal(opt: &LabeledDigraph, reference: &RefGraph, ctx: &str) {
    for p in 0..reference.n {
        assert_eq!(
            opt.contains_node(ProcessId::from_usize(p)),
            reference.nodes[p],
            "{ctx}: node {p}"
        );
        for q in 0..reference.n {
            let expected = match reference.labels[p * reference.n + q] {
                0 => None,
                l => Some(l),
            };
            assert_eq!(
                opt.label(ProcessId::from_usize(p), ProcessId::from_usize(q)),
                expected,
                "{ctx}: edge ({p},{q})"
            );
        }
    }
}

/// Runs both estimator families over the same `hears` pattern for `rounds`
/// rounds and checks exact agreement after every round.
fn run_differential(
    n: usize,
    rounds: Round,
    rebase_limit: Round,
    hears: impl Fn(Round, usize, usize) -> bool,
) {
    let mut prod: Vec<SkeletonEstimator> = (0..n)
        .map(|i| SkeletonEstimator::new(n, ProcessId::from_usize(i)))
        .collect();
    for est in &mut prod {
        est.set_rebase_limit(rebase_limit);
    }
    let mut reference: Vec<RefEstimator> = (0..n).map(|i| RefEstimator::new(n, i)).collect();

    for r in 1..=rounds {
        // Broadcast snapshots of round r − 1 (shared Arc handles for the
        // production path, so the own-rebroadcast memcpy seed is active).
        let prod_msgs: Vec<std::sync::Arc<LabeledDigraph>> =
            prod.iter().map(|e| e.graph_arc()).collect();
        let ref_msgs: Vec<RefGraph> = reference.iter().map(|e| e.g.clone()).collect();
        for i in 0..n {
            // p always hears itself (p ∈ PT_p)
            let pt_members: Vec<usize> = (0..n).filter(|&q| q == i || hears(r, i, q)).collect();
            let pt = ProcessSet::from_indices(n, pt_members.iter().copied());
            prod[i].update(
                r,
                &pt,
                pt_members
                    .iter()
                    .map(|&q| (ProcessId::from_usize(q), &*prod_msgs[q])),
            );
            let rcv: Vec<(usize, RefGraph)> = pt_members
                .iter()
                .map(|&q| (q, ref_msgs[q].clone()))
                .collect();
            reference[i].update(r, &rcv);
        }
        for (i, (p, q)) in prod.iter().zip(&reference).enumerate() {
            assert_graphs_equal(p.graph(), &q.g, &format!("round {r}, process {i}"));
        }
    }
    // The run was long enough to actually cross rebase boundaries.
    assert!(
        rounds <= rebase_limit || prod[0].graph().base() > 0,
        "expected at least one rebase over {rounds} rounds at limit {rebase_limit}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized dynamic communication graphs, rebase limit forced low:
    /// the delta-layout estimator must match the u32 reference through
    /// dozens of rebase boundaries.
    #[test]
    fn estimator_matches_u32_reference_across_rebases(
        n in 2usize..7,
        seed in any::<u64>(),
        density in 1u64..4,
    ) {
        let limit = n as Round + 3; // rebases every 3 rounds
        run_differential(n, 30, limit, |r, i, q| {
            // deterministic pseudo-random edge pattern from the seed
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((u64::from(r) << 16) ^ ((i as u64) << 8) ^ q as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (h >> 60) < 4 * density
        });
    }
}

/// Fully synchronous runs: the reference and the production estimator stay
/// identical for 100 rounds with rebases firing every few rounds, and the
/// default-limit estimator (no rebase inside this horizon) agrees too.
#[test]
fn synchronous_run_matches_reference_with_and_without_rebases() {
    for n in [1usize, 2, 4] {
        run_differential(n, 100, n as Round + 2, |_, _, _| true);
        run_differential(n, 40, u16::MAX as Round, |_, _, _| true);
    }
}
