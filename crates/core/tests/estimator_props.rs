//! Property tests of the stable-skeleton estimator beyond the per-round
//! lemma checks: order-independence, idempotence-like laws, and the
//! freshness guard's behaviour.

use proptest::prelude::*;

use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet, Round};
use sskel_kset::SkeletonEstimator;

const N: usize = 6;

fn arb_labeled() -> impl Strategy<Value = LabeledDigraph> {
    proptest::collection::vec((0..N, 0..N, 1u32..5), 0..18).prop_map(|edges| {
        let mut g = LabeledDigraph::new(N);
        for (u, v, l) in edges {
            g.set_edge_max(ProcessId::from_usize(u), ProcessId::from_usize(v), l);
        }
        g
    })
}

fn arb_pt() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::vec(0..N, 0..N).prop_map(|mut v| {
        v.push(0); // the owner must always be in its own PT
        ProcessSet::from_indices(N, v)
    })
}

proptest! {
    /// The update is independent of the order in which received graphs are
    /// presented (the paper's lines 16–23 iterate over an unordered set).
    #[test]
    fn update_is_order_independent(
        graphs in proptest::collection::vec(arb_labeled(), 1..4),
        pt in arb_pt(),
        r in 5u32..9,
    ) {
        let me = ProcessId::new(0);
        // senders: the first |graphs| members of pt (padded with owner)
        let senders: Vec<ProcessId> = pt.iter().take(graphs.len()).collect();
        let pairs: Vec<(ProcessId, &LabeledDigraph)> = senders
            .iter()
            .copied()
            .zip(graphs.iter())
            .collect();

        let mut fwd = SkeletonEstimator::new(N, me);
        fwd.update(r, &pt, pairs.iter().copied());

        let mut rev = SkeletonEstimator::new(N, me);
        rev.update(r, &pt, pairs.iter().rev().copied());

        prop_assert_eq!(fwd.graph(), rev.graph());
    }

    /// Observation 1 directly after any single update: owner present, no
    /// label ≤ r − n, and every remaining node reaches the owner.
    #[test]
    fn single_update_postconditions(
        graphs in proptest::collection::vec(arb_labeled(), 0..4),
        pt in arb_pt(),
        // r strictly above every generated label: in a real run, received
        // graphs only carry labels < r (they are last round's state)
        r in 5u32..20,
    ) {
        let me = ProcessId::new(0);
        let senders: Vec<ProcessId> = pt.iter().take(graphs.len()).collect();
        let mut est = SkeletonEstimator::new(N, me);
        est.update(r, &pt, senders.iter().copied().zip(graphs.iter()));

        prop_assert!(est.graph().contains_node(me));
        if let Some(min) = est.graph().min_label() {
            prop_assert!(min + N as Round > r, "stale label survived purge");
        }
        for v in est.graph().nodes().iter() {
            let reach = sskel_graph::reach::ancestors(est.graph(), me, est.graph().nodes());
            prop_assert!(reach.contains(v), "{v} cannot reach the owner");
        }
        // every sender contributed its fresh edge
        for q in &senders {
            prop_assert_eq!(est.graph().label(*q, me), Some(r));
        }
    }

    /// The freshness guard accepts steady-state graphs: if every edge
    /// carries the freshest label propagation allows, the guard passes.
    #[test]
    fn guard_accepts_perfectly_fresh_chains(len in 1usize..N, r in 10u32..20) {
        // chain: p_len → … → p1 → p0(owner), labels r − distance
        let me = ProcessId::new(0);
        let mut est = SkeletonEstimator::new(N, me);
        // hand-build via update: here we cheat and build the graph through
        // a custom received graph with exact labels
        let mut g = LabeledDigraph::with_node(N, me);
        for i in 0..len {
            let v = ProcessId::from_usize(i);      // target at distance i
            let u = ProcessId::from_usize(i + 1);  // source at distance i+1
            let label = r - i as u32;
            g.set_edge_max(u, v, label.max(1));
        }
        let pt = ProcessSet::from_indices(N, [0, 1]);
        est.update(r, &pt, [(me, &g), (ProcessId::new(1), &LabeledDigraph::with_node(N, ProcessId::new(1)))].into_iter());
        prop_assert!(est.is_coherently_fresh(r));
    }

    /// The guard rejects any graph containing an edge staler than its
    /// propagation distance permits.
    #[test]
    fn guard_rejects_over_stale_edges(staleness in 1u32..4) {
        let me = ProcessId::new(0);
        let r = 10u32;
        let mut est = SkeletonEstimator::new(N, me);
        let q = ProcessId::new(1);
        let far = ProcessId::new(2);
        // edge (far --s--> q) with s older than r − dist(q → me) = r − 1
        let mut g = LabeledDigraph::with_node(N, q);
        g.set_edge_max(far, q, r - 1 - staleness);
        let pt = ProcessSet::from_indices(N, [0, 1]);
        est.update(r, &pt, [(me, &LabeledDigraph::with_node(N, me)), (q, &g)].into_iter());
        // (far → q) survives the update (label > r − n) but is too stale
        prop_assert_eq!(est.graph().label(far, q), Some(r - 1 - staleness));
        prop_assert!(!est.is_coherently_fresh(r));
    }
}

/// Deterministic sanity: repeated updates with identical inputs are stable
/// (the estimator has no hidden state besides its graph).
#[test]
fn repeated_update_with_same_inputs_is_stable() {
    let me = ProcessId::new(0);
    let pt = ProcessSet::from_indices(N, [0, 1]);
    let other = LabeledDigraph::with_node(N, ProcessId::new(1));
    let mut a = SkeletonEstimator::new(N, me);
    let own = a.graph().clone();
    a.update(
        3,
        &pt,
        [(me, &own), (ProcessId::new(1), &other)].into_iter(),
    );
    let first = a.graph().clone();
    let mut b = SkeletonEstimator::new(N, me);
    b.update(
        3,
        &pt,
        [(me, &own), (ProcessId::new(1), &other)].into_iter(),
    );
    assert_eq!(b.graph(), &first);
}
