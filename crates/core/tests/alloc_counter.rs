//! Counting-allocator proof of the zero-allocation round hot path.
//!
//! Drives a system of [`SkeletonEstimator`]s through the engine's message
//! pattern (shared `Arc` graph payloads, handles dropped at round end) and
//! asserts that after a short warm-up, `update` + the strong-connectivity
//! decision test perform **zero** heap allocations per round.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use sskel_graph::{LabeledDigraph, ProcessId, ProcessSet, Round};
use sskel_kset::SkeletonEstimator;

struct CountingAllocator;

thread_local! {
    /// Per-thread allocation count: the libtest harness thread services
    /// timeouts and result channels on its own schedule, and a global
    /// counter would (flakily) charge those allocations to the measured
    /// window. `const`-initialized so reading it never allocates.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` so allocations during TLS teardown cannot panic.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

fn pid(i: usize) -> ProcessId {
    ProcessId::from_usize(i)
}

/// One lockstep round over a fixed communication graph, mimicking the
/// engine: broadcast shared handles, then update every estimator.
/// Returns the allocations observed inside the `update` + decision calls.
fn run_round(
    ests: &mut [SkeletonEstimator],
    msgs: &mut Vec<Arc<LabeledDigraph>>,
    pt_of: &[ProcessSet],
    r: Round,
) -> u64 {
    let n = ests.len();
    // Dropping last round's handles here is exactly what the engines do
    // before calling send for the new round.
    msgs.clear();
    msgs.extend(ests.iter().map(|e| e.graph_arc()));
    let mut inside = 0;
    for (i, est) in ests.iter_mut().enumerate() {
        let pt = &pt_of[i];
        let before = allocations();
        est.update(
            r,
            pt,
            (0..n)
                .filter(|&q| pt.contains(pid(q)))
                .map(|q| (pid(q), &*msgs[q])),
        );
        let decided = est.is_strongly_connected();
        inside += allocations() - before;
        std::hint::black_box(decided);
    }
    inside
}

/// One `#[test]` for all scenarios: the per-thread counter already shields
/// the measurement from harness-thread bookkeeping, and a single test
/// additionally keeps the scenarios on one thread so a lazy one-shot
/// allocation warmed up by an earlier scenario cannot mask a regression in
/// a later one (and vice versa the assertions stay exactly zero, no
/// retries).
#[test]
fn estimator_update_allocation_behaviour() {
    estimator_update_is_allocation_free_after_warmup();
    rebase_events_are_allocation_free();
    estimator_falls_back_gracefully_when_payload_is_retained();
}

/// The delta-window rebase (renormalizing the `u16` label matrix to a new
/// base round) fires inside the steady state; with a forced-low rebase
/// limit, several rebases — including the base-mismatched batch merges of
/// the rebase rounds themselves — land inside the measured window and must
/// stay allocation-free.
fn rebase_events_are_allocation_free() {
    let n = 8;
    let mut ests: Vec<SkeletonEstimator> =
        (0..n).map(|i| SkeletonEstimator::new(n, pid(i))).collect();
    for est in &mut ests {
        est.set_rebase_limit(16); // rebases at r = 17, 25, 33, … (step 8)
    }
    let pt_of: Vec<ProcessSet> = (0..n).map(|_| ProcessSet::full(n)).collect();
    let mut msgs: Vec<Arc<LabeledDigraph>> = Vec::with_capacity(n);

    for r in 1..=4u32 {
        run_round(&mut ests, &mut msgs, &pt_of, r);
    }
    // Rounds 5..=40 cover three rebase boundaries (17, 25, 33) plus the
    // purge activation (r > n): all must run without a single allocation.
    for r in 5..=40u32 {
        let inside = run_round(&mut ests, &mut msgs, &pt_of, r);
        assert_eq!(
            inside, 0,
            "round {r} allocated {inside} times across a rebase window"
        );
    }
    // The schedule really fired: the window slid off base 0.
    assert!(
        ests[0].graph().base() > 0,
        "rebase never triggered — the coverage is vacuous"
    );
}

fn estimator_update_is_allocation_free_after_warmup() {
    for (n, shape) in [(8usize, "complete"), (32, "complete"), (16, "ring")] {
        let mut ests: Vec<SkeletonEstimator> =
            (0..n).map(|i| SkeletonEstimator::new(n, pid(i))).collect();
        let pt_of: Vec<ProcessSet> = (0..n)
            .map(|i| match shape {
                "ring" => ProcessSet::from_indices(n, [i, (i + n - 1) % n]),
                _ => ProcessSet::full(n),
            })
            .collect();
        let mut msgs: Vec<Arc<LabeledDigraph>> = Vec::with_capacity(n);

        // Warm-up: buffers size themselves, double-buffering reaches its
        // steady state (spare reclaimed from round r-2's broadcast).
        for r in 1..=4u32 {
            run_round(&mut ests, &mut msgs, &pt_of, r);
        }

        // Steady state: every update must be allocation-free. The window
        // deliberately covers the first activation of the label purge
        // (r > n, e.g. round 9 for n = 8) so lazily-sized buffers on that
        // path would be caught, not warmed past.
        for r in 5..=20u32 {
            let inside = run_round(&mut ests, &mut msgs, &pt_of, r);
            assert_eq!(
                inside, 0,
                "n={n} {shape}: round {r} allocated {inside} times in the hot path"
            );
        }
    }
}

fn estimator_falls_back_gracefully_when_payload_is_retained() {
    // If a message handle outlives the round (e.g. a trace recorder keeps
    // it), the estimator must still be correct — it allocates a fresh
    // buffer instead of mutating the shared one.
    let n = 4;
    let mut ests: Vec<SkeletonEstimator> =
        (0..n).map(|i| SkeletonEstimator::new(n, pid(i))).collect();
    let pt = vec![ProcessSet::full(n); n];
    let mut msgs: Vec<Arc<LabeledDigraph>> = Vec::new();
    let mut hoarded: Vec<Arc<LabeledDigraph>> = Vec::new();
    for r in 1..=8u32 {
        msgs.clear();
        msgs.extend(ests.iter().map(|e| e.graph_arc()));
        hoarded.extend(msgs.iter().cloned()); // never dropped
        for (i, est) in ests.iter_mut().enumerate() {
            est.update(r, &pt[i], (0..n).map(|q| (pid(q), &*msgs[q])));
        }
    }
    // Complete graph: everyone's approximation is strongly connected, and
    // the hoarded round-r snapshots are still intact (not mutated away).
    for est in &mut ests {
        assert!(est.is_strongly_connected());
    }
    assert_eq!(
        hoarded[0].node_count(),
        1,
        "round-1 snapshot must be frozen"
    );
    assert!(hoarded.last().unwrap().node_count() == n);
}
