//! Shared workload builders for the benchmark harness and the experiment
//! binaries (`src/bin/*`). Every experiment in `EXPERIMENTS.md` is
//! regenerated from these, with fixed seeds for reproducibility.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_graph::{Digraph, ProcessId, Round};
use sskel_kset::{lemma11_bound, KSetAgreement};
use sskel_model::{run_lockstep, RunTrace, RunUntil, Schedule, Value};
use sskel_predicates::{planted_psrcs_schedule, NoisySchedule};

/// Default seed for all experiments (change to resample everything).
pub const SEED: u64 = 0x5eed_cafe;

/// Distinct inputs `10, 11, …` for `n` processes.
pub fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|i| i + 10).collect()
}

/// A seeded random `Psrcs(k)` schedule of the standard experiment shape.
pub fn std_schedule(seed: u64, n: usize, k: usize) -> NoisySchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    planted_psrcs_schedule(&mut rng, n, k, 0.1, 250, 5)
}

/// Runs Algorithm 1 (paper rule) to completion under the Lemma-11 bound.
pub fn run_alg1<S: Schedule>(schedule: &S, n: usize) -> RunTrace {
    let algs = KSetAgreement::spawn_all(n, &inputs(n));
    let (trace, _) = run_lockstep(
        schedule,
        algs,
        RunUntil::AllDecided {
            max_rounds: lemma11_bound(schedule) + 2,
        },
    );
    trace
}

/// A ring skeleton (single cycle through all nodes) with self-loops:
/// the worst case for decision latency (paths of length n − 1).
pub fn ring_skeleton(n: usize) -> Digraph {
    let mut g = Digraph::empty(n);
    g.add_self_loops();
    for i in 0..n {
        g.add_edge(ProcessId::from_usize(i), ProcessId::from_usize((i + 1) % n));
    }
    g
}

/// Sparse strongly connected skeleton: ring plus a few chords.
pub fn ring_with_chords(n: usize, chords: usize) -> Digraph {
    let mut g = ring_skeleton(n);
    for c in 0..chords {
        let u = (c * 7) % n;
        let v = (u + n / 2 + c) % n;
        if u != v {
            g.add_edge(ProcessId::from_usize(u), ProcessId::from_usize(v));
        }
    }
    g
}

/// Formats a mean ± max line for round statistics.
pub fn stats_line(values: &[Round]) -> String {
    if values.is_empty() {
        return "n/a".to_owned();
    }
    let sum: u64 = values.iter().map(|&v| u64::from(v)).sum();
    let mean = sum as f64 / values.len() as f64;
    let max = values.iter().max().unwrap();
    format!("mean {mean:.1}, max {max}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sskel_graph::{is_strongly_connected, ProcessSet};

    #[test]
    fn ring_is_strongly_connected() {
        for n in [2usize, 5, 12] {
            let g = ring_skeleton(n);
            assert!(is_strongly_connected(&g, &ProcessSet::full(n)));
            let g = ring_with_chords(n, 3);
            assert!(is_strongly_connected(&g, &ProcessSet::full(n)));
        }
    }

    #[test]
    fn std_schedule_runs_to_completion() {
        let s = std_schedule(SEED, 8, 2);
        let trace = run_alg1(&s, 8);
        assert!(trace.all_decided());
    }

    #[test]
    fn stats_line_formats() {
        assert_eq!(stats_line(&[2, 4]), "mean 3.0, max 4");
        assert_eq!(stats_line(&[]), "n/a");
    }
}
