//! **T1** — Monte-Carlo validation of Theorem 1: in every run admissible in
//! `Psrcs(k)`, the stable skeleton has at most `k` root components.
//!
//! Sweeps n and k over seeded random planted-`Psrcs(k)` skeletons and
//! reports the distribution of root-component counts vs both the planted
//! `k` and the tight `min_k` of each sample.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_bench::SEED;
use sskel_model::parallel::{default_threads, par_map};
use sskel_predicates::{min_k_on_skeleton, planted_psrcs_skeleton, root_component_count};

fn main() {
    const SAMPLES_PER_CELL: usize = 300;
    println!("T1: Theorem 1 — root components ≤ k under Psrcs(k)");
    println!("{} samples per (n, k) cell\n", SAMPLES_PER_CELL);
    println!(
        "{:>4} {:>3} | {:>10} {:>10} {:>10} {:>12}",
        "n", "k", "max roots", "max min_k", "violations", "tight cells %"
    );
    println!("{}", "-".repeat(60));

    for n in [8usize, 16, 24, 48] {
        for k in [1usize, 2, 3, 6] {
            if k > n {
                continue;
            }
            let jobs: Vec<u64> = (0..SAMPLES_PER_CELL as u64).collect();
            let rows = par_map(jobs, default_threads(16), |i, _| {
                let mut rng = StdRng::seed_from_u64(
                    SEED ^ ((n as u64) << 32) ^ ((k as u64) << 16) ^ i as u64,
                );
                let (skel, _) = planted_psrcs_skeleton(&mut rng, n, k, 0.06);
                let roots = root_component_count(&skel);
                let mk = min_k_on_skeleton(&skel);
                assert!(mk <= k, "planted certificate violated");
                assert!(
                    roots <= mk,
                    "THEOREM 1 VIOLATED: {roots} roots > min_k {mk}"
                );
                (roots, mk)
            });
            let max_roots = rows.iter().map(|&(r, _)| r).max().unwrap();
            let max_mk = rows.iter().map(|&(_, m)| m).max().unwrap();
            let tight = rows.iter().filter(|&&(r, m)| r == m).count();
            println!(
                "{:>4} {:>3} | {:>10} {:>10} {:>10} {:>11.1}%",
                n,
                k,
                max_roots,
                max_mk,
                0,
                100.0 * tight as f64 / SAMPLES_PER_CELL as f64
            );
        }
    }
    println!("\nall samples satisfy roots ≤ min_k ≤ k  (Theorem 1) ✓");
}
