//! **E5** — baseline comparison in the crash model and beyond:
//!
//! * crash schedules (f clean crashes, one survivor guaranteed): FloodMin,
//!   NaiveMinHorizon and Algorithm 1 all reach consensus; FloodMin is
//!   fastest (⌊f/k⌋+1 rounds), Algorithm 1 pays n-ish rounds but needs no
//!   f/k parameters;
//! * the Theorem-2 `Psrcs(k)` run: both baselines violate k-agreement,
//!   Algorithm 1 does not — who wins flips exactly where the paper says.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sskel_bench::{inputs, SEED};
use sskel_graph::{ProcessId, Round};
use sskel_kset::{lemma11_bound, FloodMin, KSetAgreement, NaiveMinHorizon};
use sskel_model::{run_lockstep, RunUntil, Value};
use sskel_predicates::{CrashSchedule, Theorem2Schedule};

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    println!("E5a: crash model (n = 8, f staggered crashes, k = 1)\n");
    println!(
        "{:>3} | {:>16} {:>16} {:>16}",
        "f", "FloodMin rounds", "Naive rounds", "Alg.1 rounds"
    );
    println!("{}", "-".repeat(58));
    let n = 8usize;
    for f in [0usize, 1, 3, 5, 7] {
        let crashes: Vec<(ProcessId, Round)> = (0..f)
            .map(|i| (ProcessId::from_usize(i), rng.gen_range(1..6) as Round))
            .collect();
        let s = CrashSchedule::new(n, crashes);
        let ins = inputs(n);

        let (flood, _) = run_lockstep(
            &s,
            FloodMin::spawn_all(n, &ins, f, 1),
            RunUntil::AllDecided { max_rounds: 40 },
        );
        let (naive, _) = run_lockstep(
            &s,
            NaiveMinHorizon::spawn_all(n, &ins),
            RunUntil::AllDecided { max_rounds: 40 },
        );
        let (alg1, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &ins),
            RunUntil::AllDecided {
                max_rounds: lemma11_bound(&s) + 2,
            },
        );
        for t in [&flood, &naive, &alg1] {
            assert_eq!(t.distinct_decision_values().len(), 1, "consensus expected");
        }
        println!(
            "{:>3} | {:>16} {:>16} {:>16}",
            f,
            flood.last_decision_round().unwrap(),
            naive.last_decision_round().unwrap(),
            alg1.last_decision_round().unwrap()
        );
    }

    println!("\nE5b: Psrcs(k) adversary (Theorem-2 run, source holds a large value)\n");
    println!(
        "{:>4} {:>3} | {:>15} {:>15} {:>15}",
        "n", "k", "FloodMin vals", "Naive vals", "Alg.1 vals"
    );
    println!("{}", "-".repeat(62));
    for (n, k) in [(5usize, 2usize), (8, 2), (8, 4), (12, 3)] {
        let s = Theorem2Schedule::new(n, k);
        let mut ins: Vec<Value> = inputs(n);
        ins[k - 1] = 10_000; // the source proposes a large value
        let (flood, _) = run_lockstep(
            &s,
            FloodMin::spawn_all(n, &ins, n - 1, k),
            RunUntil::AllDecided { max_rounds: 60 },
        );
        let (naive, _) = run_lockstep(
            &s,
            NaiveMinHorizon::spawn_all(n, &ins),
            RunUntil::AllDecided { max_rounds: 60 },
        );
        let (alg1, _) = run_lockstep(
            &s,
            KSetAgreement::spawn_all(n, &ins),
            RunUntil::AllDecided {
                max_rounds: lemma11_bound(&s) + 2,
            },
        );
        let fv = flood.distinct_decision_values().len();
        let nv = naive.distinct_decision_values().len();
        let av = alg1.distinct_decision_values().len();
        assert!(av <= k, "Algorithm 1 must stay within k");
        println!(
            "{:>4} {:>3} | {:>12} {:>3} {:>12} {:>3} {:>12} {:>3}",
            n,
            k,
            fv,
            if fv > k { "✗" } else { "✓" },
            nv,
            if nv > k { "✗" } else { "✓" },
            av,
            "✓"
        );
    }
    println!(
        "\ncrossover exactly as predicted: baselines win on speed in the\n\
         crash model, but only Algorithm 1 is safe under Psrcs(k) ✓"
    );
}
