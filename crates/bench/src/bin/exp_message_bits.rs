//! **E4** — message complexity (§V): Algorithm 1's messages carry the
//! approximation graph, so per-broadcast size is `O(|V_p| + |E_p| · log)` —
//! polynomial in n. Measures actual encoded bytes per broadcast over whole
//! runs, dense vs sparse skeletons.

use sskel_bench::{inputs, ring_with_chords, run_alg1};
use sskel_model::FixedSchedule;

fn main() {
    println!("E4: wire bytes per broadcast (mean over a full run)\n");
    println!(
        "{:>4} | {:>18} {:>18} | {:>14}",
        "n", "dense mean B/bcast", "sparse mean B/bcast", "dense/sparse"
    );
    println!("{}", "-".repeat(64));
    let mut dense_prev: Option<f64> = None;
    for n in [4usize, 8, 16, 32, 64] {
        let dense = FixedSchedule::synchronous(n);
        let sparse = FixedSchedule::new(ring_with_chords(n, 3));
        let td = run_alg1(&dense, n);
        let ts = run_alg1(&sparse, n);
        let _ = inputs(n);
        let mb_d = td.msg_stats.broadcast_bytes as f64 / td.msg_stats.broadcasts as f64;
        let mb_s = ts.msg_stats.broadcast_bytes as f64 / ts.msg_stats.broadcasts as f64;
        let growth = dense_prev.map(|p| mb_d / p);
        println!(
            "{:>4} | {:>18.1} {:>18.1} | {:>14.1}{}",
            n,
            mb_d,
            mb_s,
            mb_d / mb_s,
            growth
                .map(|g| format!("   (dense ×{g:.1} vs n/2)"))
                .unwrap_or_default()
        );
        dense_prev = Some(mb_d);
    }
    println!(
        "\ndense broadcasts grow ~quadratically in n (the graph payload),\n\
         sparse skeletons linearly — polynomial in n as §V claims ✓"
    );
}
