//! Hot-path performance record: runs the `full_run`, `approx_update` and
//! `engines` workloads with a plain wall-clock harness and writes
//! `BENCH_hotpath.json` at the repository root, seeding the perf
//! trajectory that future PRs extend.
//!
//! ```text
//! cargo run --release -p sskel-bench --bin perf_report
//! ```
//!
//! `--smoke` runs every workload in 1-sample mode with minimal warm-up and
//! writes the report next to the build artifacts instead of the curated
//! repository file — CI runs this so regeneration of `BENCH_hotpath.json`
//! cannot silently bit-rot, without clobbering the recorded medians:
//!
//! ```text
//! cargo run --release -p sskel-bench --bin perf_report -- --smoke
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// `--smoke`: 1-sample mode exercising every workload and the JSON writer.
static SMOKE: AtomicBool = AtomicBool::new(false);

use sskel_bench::{inputs, ring_skeleton, ring_with_chords, std_schedule, SEED};
use sskel_graph::{Digraph, LabeledDigraph, ProcessId, ProcessSet, Round};
use sskel_kset::{lemma11_bound, AgreementPool, DecisionRule, KSetAgreement, SkeletonEstimator};
use sskel_model::engine::{resume_from_journal, run_lockstep_journaled};
use sskel_model::{
    run_lockstep, run_lockstep_codec, run_multiplex_codec, run_sharded, run_sharded_codec,
    run_socket, run_threaded, ChurnAdversary, CorruptionOverlay, FixedSchedule, MultiplexPlan,
    MuxInstance, NoFaults, RotatingRootAdversary, RunMeta, RunUntil, Schedule, ShardPlan,
    SocketPlan, StableRootAdversary,
};

struct Record {
    id: String,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
}

/// Times `f` with a short calibrated warm-up, then `samples` batches.
/// In `--smoke` mode: one sample, one iteration, near-zero warm-up — the
/// numbers are meaningless but every workload and the report writer run.
fn measure<O>(id: &str, mut f: impl FnMut() -> O) -> Record {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let warmup = if smoke {
        Duration::ZERO
    } else {
        Duration::from_millis(200)
    };
    let budget = Duration::from_millis(if smoke { 1 } else { 800 });
    let samples = if smoke { 1 } else { 15 };

    let warm_start = Instant::now();
    let mut iters: u64 = 0;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if warm_start.elapsed() >= warmup {
            break;
        }
    }
    let per_iter = (warm_start.elapsed().as_nanos() as u64 / iters.max(1)).max(1);
    let batch = ((budget.as_nanos() as u64 / samples as u64) / per_iter).clamp(1, 1_000_000);

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("time is finite"));
    let rec = Record {
        id: id.to_owned(),
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        min_ns: per_iter_ns[0],
        samples,
    };
    eprintln!("{:<40} median {:>12.1} ns", rec.id, rec.median_ns);
    rec
}

fn full_run_workloads(out: &mut Vec<Record>) {
    for &n in &[8usize, 16, 32] {
        let ins = inputs(n);
        let shapes: Vec<(&str, Box<dyn Schedule>)> = vec![
            ("synchronous", Box::new(FixedSchedule::synchronous(n))),
            ("ring", Box::new(FixedSchedule::new(ring_skeleton(n)))),
            ("planted_noisy", Box::new(std_schedule(SEED, n, 3.min(n)))),
        ];
        for (shape, s) in shapes {
            let until = RunUntil::AllDecided {
                max_rounds: lemma11_bound(s.as_ref()) + 2,
            };
            out.push(measure(&format!("full_run/{shape}/{n}"), || {
                let algs = KSetAgreement::spawn_all(n, &ins);
                run_lockstep(s.as_ref(), algs, until).0.rounds_executed
            }));
        }
    }
}

/// Steady-state estimators over `skeleton`, plus their broadcast handles.
fn steady_state(skeleton: &Digraph, rounds: Round) -> Vec<SkeletonEstimator> {
    let n = skeleton.n();
    let mut ests: Vec<SkeletonEstimator> = (0..n)
        .map(|i| SkeletonEstimator::new(n, ProcessId::from_usize(i)))
        .collect();
    let mut msgs: Vec<std::sync::Arc<LabeledDigraph>> = Vec::with_capacity(n);
    for r in 1..=rounds {
        msgs.clear();
        msgs.extend(ests.iter().map(|e| e.graph_arc()));
        for (i, est) in ests.iter_mut().enumerate() {
            let pt = skeleton.in_neighbors(ProcessId::from_usize(i));
            est.update(
                r,
                pt,
                (0..n)
                    .filter(|&q| pt.contains(ProcessId::from_usize(q)))
                    .map(|q| (ProcessId::from_usize(q), &*msgs[q])),
            );
        }
    }
    ests
}

fn approx_update_workloads(out: &mut Vec<Record>) {
    for &n in &[8usize, 16, 32, 64] {
        for (shape, skel) in [
            ("dense", Digraph::complete(n)),
            ("sparse", ring_skeleton(n)),
        ] {
            let mut ests = steady_state(&skel, 2 * n as Round);
            let mut msgs: Vec<std::sync::Arc<LabeledDigraph>> = Vec::with_capacity(n);
            // Precomputed outside the measured closure: the workload must
            // time only the zero-allocation update path.
            let pt_of: Vec<ProcessSet> = (0..n)
                .map(|i| skel.in_neighbors(ProcessId::from_usize(i)).clone())
                .collect();
            let mut r = 2 * n as Round;
            out.push(measure(&format!("approx_update/{shape}/{n}"), || {
                r += 1;
                msgs.clear();
                msgs.extend(ests.iter().map(|e| e.graph_arc()));
                for (i, est) in ests.iter_mut().enumerate() {
                    let pt = &pt_of[i];
                    est.update(
                        r,
                        pt,
                        (0..n)
                            .filter(|&q| pt.contains(ProcessId::from_usize(q)))
                            .map(|q| (ProcessId::from_usize(q), &*msgs[q])),
                    );
                }
                ests[0].graph().edge_count()
            }));
        }
    }
}

fn engines_workloads(out: &mut Vec<Record>) {
    for &n in &[8usize, 16] {
        let s = FixedSchedule::synchronous(n);
        let ins = inputs(n);
        let until = RunUntil::AllDecided {
            max_rounds: lemma11_bound(&s) + 2,
        };
        out.push(measure(&format!("engines/lockstep/{n}"), || {
            run_lockstep(&s, KSetAgreement::spawn_all(n, &ins), until)
                .0
                .rounds_executed
        }));
        out.push(measure(&format!("engines/threaded/{n}"), || {
            run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until)
                .0
                .rounds_executed
        }));
        out.push(measure(&format!("engines/sharded/{n}"), || {
            run_sharded(
                &s,
                KSetAgreement::spawn_all(n, &ins),
                until,
                ShardPlan::new(4),
            )
            .0
            .rounds_executed
        }));
    }

    // Large-n fixed-horizon workload over a sparse skeleton: the regime
    // sharding exists for. One thread per process (`threaded`) pays ~n
    // context switches per round on the single-core container; `sharded`
    // runs the same rounds on 4 threads with a barrier every 4th round.
    let n = 256usize;
    let s = FixedSchedule::new(ring_with_chords(n, 8));
    let ins = inputs(n);
    let until = RunUntil::Rounds(6);
    out.push(measure("engines/threaded/256x6r", || {
        run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until)
            .0
            .rounds_executed
    }));
    out.push(measure("engines/sharded/256x6r_s4w4", || {
        run_sharded(
            &s,
            KSetAgreement::spawn_all(n, &ins),
            until,
            ShardPlan::new(4).with_window(4),
        )
        .0
        .rounds_executed
    }));
}

/// The socket engine against its in-process siblings: the same sealed
/// frames, but every inter-shard hop crosses a real loopback `TcpStream`
/// — syscalls, kernel buffers and stream reassembly included. Together
/// with the `lockstep`/`sharded` and `*_codec` rows this completes the
/// Arc → codec → socket cost ladder recorded in `docs/BENCHMARKS.md`,
/// and is where the u16-delta codec's halved `wire_bytes` finally buys
/// wall-clock instead of just smaller accounting. Rows are skipped (with
/// a note) when the sandbox cannot bind loopback sockets.
fn socket_workloads(out: &mut Vec<Record>) {
    if std::net::TcpListener::bind(("127.0.0.1", 0)).is_err() {
        eprintln!("engines/socket/*: skipped (loopback unavailable)");
        return;
    }
    for &n in &[16usize, 64] {
        let s = FixedSchedule::synchronous(n);
        let ins = inputs(n);
        // n = 16 runs to decision like its lockstep/threaded/sharded
        // siblings; n = 64 is horizon-bounded — a full synchronous
        // decision run at that size pushes gigabytes of dense
        // approximation frames through loopback per iteration, which
        // measures patience, not the transport.
        let until = if n <= 16 {
            RunUntil::AllDecided {
                max_rounds: lemma11_bound(&s) + 2,
            }
        } else {
            RunUntil::Rounds(6)
        };
        out.push(measure(&format!("engines/socket/{n}"), || {
            run_socket(
                &s,
                KSetAgreement::spawn_all(n, &ins),
                until,
                SocketPlan::new(4),
            )
            .expect("socket run")
            .0
            .rounds_executed
        }));
    }

    // the large-n fixed-horizon workload of `engines/{threaded,sharded}/
    // 256x6r`, now with the inter-shard frames on the wire
    let n = 256usize;
    let s = FixedSchedule::new(ring_with_chords(n, 8));
    let ins = inputs(n);
    let until = RunUntil::Rounds(6);
    out.push(measure("engines/socket/256x6r", || {
        run_socket(
            &s,
            KSetAgreement::spawn_all(n, &ins),
            until,
            SocketPlan::new(4).with_window(4),
        )
        .expect("socket run")
        .0
        .rounds_executed
    }));
}

/// Codec-boundary transport against the `Arc` hand-off it replaces: the
/// same workloads with every payload running `encode → frame → decode`
/// through an inert fault plane. The gap is the real serialization cost
/// the `Arc` path hides (recorded in `docs/BENCHMARKS.md`), and the
/// corruption-rate ablation tracks what the seeded tamper path adds on
/// top.
fn codec_workloads(out: &mut Vec<Record>) {
    let n = 16usize;
    let s = FixedSchedule::synchronous(n);
    let ins = inputs(n);
    let until = RunUntil::AllDecided {
        max_rounds: lemma11_bound(&s) + 2,
    };
    out.push(measure(&format!("engines/lockstep_codec/{n}"), || {
        run_lockstep_codec(&s, KSetAgreement::spawn_all(n, &ins), until, &NoFaults)
            .0
            .rounds_executed
    }));

    // the bandwidth-bound dense round at scale: the regime where framing
    // every payload hurts the most
    let n = 256usize;
    let s = FixedSchedule::new(ring_with_chords(n, 8));
    let ins = inputs(n);
    let until = RunUntil::Rounds(6);
    out.push(measure("engines/sharded_codec/256x6r_s4w4", || {
        run_sharded_codec(
            &s,
            KSetAgreement::spawn_all(n, &ins),
            until,
            ShardPlan::new(4).with_window(4),
            &NoFaults,
        )
        .0
        .rounds_executed
    }));

    // corruption-rate ablation: seeded tampering (and the quarantine
    // bookkeeping it triggers) at increasing rates, same workload
    let n = 32usize;
    let s = FixedSchedule::synchronous(n);
    let ins = inputs(n);
    let until = RunUntil::Rounds(12);
    for rate in [0.0, 0.1, 0.5] {
        let plane = CorruptionOverlay::new(SEED, rate);
        out.push(measure(
            &format!("engines/lockstep_codec_corrupt/{n}x12r_r{rate}"),
            || {
                run_lockstep_codec(&s, KSetAgreement::spawn_all(n, &ins), until, &plane)
                    .0
                    .rounds_executed
            },
        ));
    }
}

/// Agreement-as-a-service throughput: `M` concurrent instances on one
/// multiplexed worker pool vs. the same `M` runs executed solo
/// back-to-back. The service metric is **decisions per second** —
/// `n · M / median_ns` for the `decisions_per_sec` rows; the
/// `sequential_solo` row is the same quantity without the per-tick wire
/// batching, shared schedule synthesis or pooled estimator buffers, so
/// the gap is exactly what multiplexing amortizes (methodology in
/// `docs/BENCHMARKS.md`). All instances share one schedule object (the
/// co-scheduled regime the synthesis cache exists for) and draw their
/// algorithm instances from an [`AgreementPool`], so steady-state
/// iterations recycle graph buffers exactly as a long-lived service
/// would.
fn multiplex_workloads(out: &mut Vec<Record>) {
    let n = 16usize;
    let s = FixedSchedule::synchronous(n);
    let ins = inputs(n);
    let until = RunUntil::AllDecided {
        max_rounds: lemma11_bound(&s) + 2,
    };
    let mut pool = AgreementPool::new();
    for &m in &[1usize, 8, 64] {
        out.push(measure(
            &format!("multiplex/decisions_per_sec/{n}x{m}"),
            || {
                let instances: Vec<MuxInstance<'_, KSetAgreement>> = (0..m)
                    .map(|_| {
                        let algs = pool
                            .spawn_all(n, &ins, DecisionRule::Paper)
                            .expect("pool spawn");
                        MuxInstance::new(&s, algs, until)
                    })
                    .collect();
                let results = run_multiplex_codec(instances, MultiplexPlan::new(4), &NoFaults);
                let mut decided = 0usize;
                for (trace, algs) in results {
                    decided += trace.decisions.iter().flatten().count();
                    pool.retire(algs);
                }
                decided
            },
        ));
    }

    // the no-multiplexing baseline: the same 64 runs, solo and sequential
    let m = 64usize;
    out.push(measure(
        &format!("multiplex/sequential_solo/{n}x{m}"),
        || {
            let mut decided = 0usize;
            for _ in 0..m {
                let algs = pool
                    .spawn_all(n, &ins, DecisionRule::Paper)
                    .expect("pool spawn");
                let (trace, algs) =
                    run_sharded_codec(&s, algs, until, ShardPlan::new(4), &NoFaults);
                decided += trace.decisions.iter().flatten().count();
                pool.retire(algs);
            }
            decided
        },
    ));
}

/// Hostile-schedule workloads: full runs to decision under the seedable
/// message adversaries (see `sskel-model`'s `adversary` module). These
/// track the cost of the conformance story — per-round graph synthesis is
/// part of the measured loop, exactly as the conformance suite pays it,
/// and the runs use the same `FreshnessGuarded` decision rule (the
/// literal paper rule is unsound under these adversaries' transient early
/// edges, so it is also not the configuration worth watching).
fn adversary_workloads(out: &mut Vec<Record>) {
    let n = 32usize;
    let ins = inputs(n);
    let spawn = |ins: &[sskel_model::Value]| {
        KSetAgreement::spawn_all_with(n, ins, DecisionRule::FreshnessGuarded)
    };
    let shapes: Vec<(&str, Box<dyn Schedule>)> = vec![
        (
            "stable_root",
            Box::new(StableRootAdversary::sample(n, SEED)),
        ),
        (
            "rotating_root",
            Box::new(RotatingRootAdversary::sample(n, SEED)),
        ),
        ("churn", Box::new(ChurnAdversary::sample(n, SEED))),
    ];
    for (shape, s) in shapes {
        let until = RunUntil::AllDecided {
            max_rounds: lemma11_bound(s.as_ref()) + 2,
        };
        out.push(measure(&format!("adversary/{shape}/{n}"), || {
            run_lockstep(s.as_ref(), spawn(&ins), until)
                .0
                .rounds_executed
        }));
    }
    // the sharded engine under an adversary: the conformance suite's most
    // expensive configuration
    let s = StableRootAdversary::sample(n, SEED);
    let until = RunUntil::AllDecided {
        max_rounds: lemma11_bound(&s) + 2,
    };
    out.push(measure("adversary/stable_root_sharded4/32", || {
        run_sharded(&s, spawn(&ins), until, ShardPlan::new(4).with_window(4))
            .0
            .rounds_executed
    }));
}

/// The durable run store on the hot path: `journal/write` is a full
/// journaled run (the codec run plus sealing every round's frames and the
/// snapshot cuts into a `Vec` sink — the write-amplification of
/// durability), `journal/replay` is `resume_from_journal` over a complete
/// journal (pure restore-and-replay, no live rounds — the recovery-time
/// metric).
fn journal_workloads(out: &mut Vec<Record>) {
    let n = 32usize;
    let s = FixedSchedule::synchronous(n);
    let ins = inputs(n);
    let until = RunUntil::Rounds(12);
    let meta = RunMeta {
        seed: SEED,
        rebase_limit: n as u64 + 2,
    };
    let spawn = || {
        let mut algs = KSetAgreement::spawn_all(n, &ins);
        for a in &mut algs {
            a.set_rebase_limit(n as Round + 2);
        }
        algs
    };
    out.push(measure(&format!("journal/write/{n}"), || {
        let mut journal = Vec::new();
        run_lockstep_journaled(&s, spawn(), until, &NoFaults, &meta, &mut journal)
            .expect("journaled run")
            .0
            .rounds_executed
    }));

    let mut journal = Vec::new();
    run_lockstep_journaled(&s, spawn(), until, &NoFaults, &meta, &mut journal)
        .expect("journaled run");
    out.push(measure(&format!("journal/replay/{n}"), || {
        let mut sink = Vec::new();
        resume_from_journal::<_, KSetAgreement, _, _>(&s, &journal, until, &NoFaults, &mut sink)
            .expect("resume")
            .0
            .rounds_executed
    }));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        SMOKE.store(true, Ordering::Relaxed);
    }
    let mut records = Vec::new();
    full_run_workloads(&mut records);
    approx_update_workloads(&mut records);
    engines_workloads(&mut records);
    socket_workloads(&mut records);
    codec_workloads(&mut records);
    multiplex_workloads(&mut records);
    adversary_workloads(&mut records);
    journal_workloads(&mut records);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"sskel-perf-v1\",");
    let _ = writeln!(
        json,
        "  \"unix_time\": {},",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    );
    let _ = writeln!(json, "  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{comma}",
            r.id, r.median_ns, r.min_ns, r.samples
        );
    }
    json.push_str("  ]\n}\n");

    // crates/bench/ → repository root; smoke runs exercise the writer
    // without clobbering the curated record. The smoke directory may not
    // exist (e.g. under a redirected CARGO_TARGET_DIR).
    let path = if SMOKE.load(Ordering::Relaxed) {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
        std::fs::create_dir_all(dir).expect("create smoke report directory");
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_hotpath.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json")
    };
    std::fs::write(path, &json).expect("write BENCH_hotpath report");
    println!("wrote {path}");
}
