//! **T2** — Theorem 2 tightness: on the lower-bound run family, Algorithm 1
//! (a correct k-set agreement algorithm) is forced into exactly k distinct
//! decision values — so no algorithm can solve (k−1)-set agreement under
//! `Psrcs(k)`.

use sskel_bench::{inputs, run_alg1};
use sskel_kset::lemma11_bound;
use sskel_kset::{verify, VerifySpec};
use sskel_model::Schedule;
use sskel_predicates::{min_k_on_skeleton, Theorem2Schedule};

fn main() {
    println!("T2: Theorem 2 — Psrcs(k) forces k decision values\n");
    println!(
        "{:>4} {:>4} | {:>6} {:>10} {:>12} {:>12}",
        "n", "k", "min_k", "distinct", "last round", "L11 bound"
    );
    println!("{}", "-".repeat(58));
    for (n, k) in [
        (4usize, 2usize),
        (6, 3),
        (8, 4),
        (12, 6),
        (16, 8),
        (24, 12),
        (32, 16),
        (48, 24),
        (64, 2),
    ] {
        let s = Theorem2Schedule::new(n, k);
        let trace = run_alg1(&s, n);
        verify(
            &trace,
            &VerifySpec::new(k, inputs(n)).with_lemma11_bound(&s),
        )
        .assert_ok();
        let distinct = trace.distinct_decision_values().len();
        assert_eq!(distinct, k, "tightness must be achieved");
        println!(
            "{:>4} {:>4} | {:>6} {:>10} {:>12} {:>12}",
            n,
            k,
            min_k_on_skeleton(&s.stable_skeleton()),
            distinct,
            trace.last_decision_round().unwrap(),
            lemma11_bound(&s)
        );
    }
    println!("\ndistinct = k on every row: the predicate is tight ✓");
}
