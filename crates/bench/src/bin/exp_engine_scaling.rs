//! **E7** — engine equivalence and scaling: the threaded engine (one OS
//! thread per process, channels, parking barrier) produces identical traces to
//! the lockstep engine; wall-clock comparison shows where real threading
//! pays off (it doesn't at simulation scale — the point is fidelity, not
//! speed, exactly the "doable with channels" reproduction hint).

use std::time::Instant;

use sskel_bench::{inputs, std_schedule, SEED};
use sskel_kset::{lemma11_bound, KSetAgreement};
use sskel_model::{run_lockstep, run_threaded, RunUntil};

fn main() {
    println!("E7: lockstep vs threaded engine (identical traces asserted)\n");
    println!(
        "{:>4} | {:>12} {:>12} {:>8} | {:>10}",
        "n", "lockstep", "threaded", "ratio", "rounds"
    );
    println!("{}", "-".repeat(56));
    for n in [2usize, 4, 8, 16, 32] {
        let s = std_schedule(SEED ^ n as u64, n, 2.min(n));
        let ins = inputs(n);
        let until = RunUntil::AllDecided {
            max_rounds: lemma11_bound(&s) + 2,
        };

        let t0 = Instant::now();
        let (a, _) = run_lockstep(&s, KSetAgreement::spawn_all(n, &ins), until);
        let lock = t0.elapsed();

        let t0 = Instant::now();
        let (b, _) = run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until);
        let thr = t0.elapsed();

        assert_eq!(a.decisions, b.decisions, "trace divergence at n={n}");
        assert_eq!(a.msg_stats, b.msg_stats);
        println!(
            "{:>4} | {:>12?} {:>12?} {:>7.1}x | {:>10}",
            n,
            lock,
            thr,
            thr.as_secs_f64() / lock.as_secs_f64().max(1e-9),
            a.rounds_executed
        );
    }
    println!(
        "\ntraces identical on every row ✓ (threading overhead dominates at\n\
         simulation scale — the threaded engine is a fidelity check, not an\n\
         optimization)"
    );
}
