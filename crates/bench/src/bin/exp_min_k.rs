//! **E6** — the tight k of a run: `min_k = α(H)` over the common-source
//! graph. Validates the two checkers against each other and reports how
//! `min_k` responds to skeleton density (denser synchrony ⇒ stronger
//! agreement).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_bench::SEED;
use sskel_graph::{rand_graph, ProcessId, ProcessSet};
use sskel_predicates::psrcs;

fn pt_of(skel: &sskel_graph::Digraph) -> Vec<ProcessSet> {
    (0..skel.n())
        .map(|p| skel.in_neighbors(ProcessId::from_usize(p)).clone())
        .collect()
}

fn main() {
    const SAMPLES: usize = 120;
    println!("E6: min_k (= α(common-source graph)) vs skeleton density, n = 14\n");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} | {:>12}",
        "density", "mean", "min", "max", "checker agree"
    );
    println!("{}", "-".repeat(56));
    let n = 14usize;
    for density_milli in [0u32, 30, 80, 150, 300, 600] {
        let mut vals = Vec::with_capacity(SAMPLES);
        let mut agreements = 0usize;
        for i in 0..SAMPLES {
            let mut rng = StdRng::seed_from_u64(SEED ^ (u64::from(density_milli) << 20) ^ i as u64);
            let skel = rand_graph::gnp(&mut rng, n, f64::from(density_milli) / 1000.0, true);
            let pt = pt_of(&skel);
            let mk = psrcs::min_k(&pt);
            vals.push(mk);
            // cross-check against the literal subset enumerator at the
            // threshold (the expensive direction)
            let naive_at = psrcs::holds_naive(&pt, mk);
            let naive_below = mk == 1 || !psrcs::holds_naive(&pt, mk - 1);
            if naive_at && naive_below {
                agreements += 1;
            }
        }
        let mean = vals.iter().sum::<usize>() as f64 / vals.len() as f64;
        println!(
            "{:>7.2} | {:>8.2} {:>8} {:>8} | {:>11}/{}",
            f64::from(density_milli) / 1000.0,
            mean,
            vals.iter().min().unwrap(),
            vals.iter().max().unwrap(),
            agreements,
            SAMPLES
        );
        assert_eq!(agreements, SAMPLES, "checkers disagree!");
    }
    println!("\nmin_k falls monotonically with density; checkers agree on all samples ✓");
}
