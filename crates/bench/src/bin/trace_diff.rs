//! `trace_diff` — first-divergence comparison of two recorded run journals.
//!
//! ```text
//! cargo run -p sskel-bench --bin trace_diff -- <a.journal> <b.journal>
//! cargo run -p sskel-bench --bin trace_diff -- --self-test
//! ```
//!
//! Compares two journals written by
//! `sskel_model::engine::run_lockstep_journaled` and reports the **first
//! divergent component** as `round · process · component` (component ∈
//! decision | msg_stats | fault-ledger | estimator-base) with both values
//! — instead of the bare "traces differ" an equality assert gives.
//!
//! Exit codes: `0` = identical journals, `1` = divergence found (printed
//! to stdout), `2` = usage / I/O / decode error.
//!
//! `--self-test` runs two journaled Algorithm 1 executions that differ
//! only in their estimator rebase limit and checks the diff pinpoints
//! them as divergent (exit `0` iff a nonempty report was produced); CI
//! runs this to keep the tool honest.

use sskel_kset::KSetAgreement;
use sskel_model::journal::{diff_journals, scan, JournalScan, RunMeta};
use sskel_model::{engine::run_lockstep_journaled, FixedSchedule, NoFaults, RunUntil};
use std::process::ExitCode;

fn load(path: &str) -> Result<JournalScan, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let scanned = scan(&bytes).map_err(|e| format!("{path}: journal decode: {e}"))?;
    if scanned.truncated {
        eprintln!(
            "note: {path} has a torn tail; comparing its durable prefix ({} bytes)",
            scanned.durable_len
        );
    }
    Ok(scanned)
}

/// Two runs forced apart solely via `set_rebase_limit`: everything else —
/// schedule, inputs, plane, horizon — is identical, so the first
/// divergence must land on the estimator's recoverable state.
fn self_test() -> Result<(), String> {
    let n = 8;
    let schedule = FixedSchedule::synchronous(n);
    let inputs: Vec<u64> = (0..n as u64).map(|i| (i + 3) * 7).collect();
    let run = |limit: u32| -> Result<Vec<u8>, String> {
        let mut algs = KSetAgreement::spawn_all(n, &inputs);
        for a in &mut algs {
            a.set_rebase_limit(limit);
        }
        let mut journal = Vec::new();
        run_lockstep_journaled(
            &schedule,
            algs,
            RunUntil::Rounds(10),
            &NoFaults,
            &RunMeta {
                seed: 0,
                rebase_limit: u64::from(limit),
            },
            &mut journal,
        )
        .map_err(|e| format!("journaled run failed: {e}"))?;
        Ok(journal)
    };
    let (bytes_a, bytes_b) = (run(10)?, run(1000)?);
    let a = scan(&bytes_a).map_err(|e| format!("self-test journal a: {e}"))?;
    let b = scan(&bytes_b).map_err(|e| format!("self-test journal b: {e}"))?;
    let d = diff_journals(&a, &b)
        .ok_or_else(|| "self-test failed: rebase-limit divergence not detected".to_owned())?;
    println!("self-test divergence: {d}");

    // Round-trip both journals through disk and the file loader: the
    // on-disk comparison must find the same first divergence.
    let dir = std::env::temp_dir();
    let (pa, pb) = (dir.join("trace_diff_a.j"), dir.join("trace_diff_b.j"));
    std::fs::write(&pa, &bytes_a).map_err(|e| format!("{}: {e}", pa.display()))?;
    std::fs::write(&pb, &bytes_b).map_err(|e| format!("{}: {e}", pb.display()))?;
    let fa = load(&pa.to_string_lossy())?;
    let fb = load(&pb.to_string_lossy())?;
    let from_disk = diff_journals(&fa, &fb)
        .ok_or_else(|| "self-test failed: on-disk journals compare identical".to_owned())?;
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
    if format!("{from_disk}") != format!("{d}") {
        return Err(format!(
            "self-test failed: in-memory and on-disk diffs disagree — {d} vs {from_disk}"
        ));
    }
    if diff_journals(&fa, &fa).is_some() {
        return Err("self-test failed: a journal diffed against itself".to_owned());
    }
    println!("self-test ok: file loader reproduces the divergence; self-diff is empty");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--self-test" => match self_test() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        },
        [a, b] => {
            let (ja, jb) = match (load(a), load(b)) {
                (Ok(ja), Ok(jb)) => (ja, jb),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            match diff_journals(&ja, &jb) {
                None => {
                    println!("identical: {a} and {b} record the same run");
                    ExitCode::SUCCESS
                }
                Some(d) => {
                    println!("{d}");
                    ExitCode::from(1)
                }
            }
        }
        _ => {
            eprintln!("usage: trace_diff <a.journal> <b.journal> | trace_diff --self-test");
            ExitCode::from(2)
        }
    }
}
