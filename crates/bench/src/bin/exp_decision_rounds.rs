//! **E3** — Lemma 11 termination bound: every process decides by round
//! `rST + 2n − 1`. Sweeps the stabilization round via chaotic prefixes and
//! the system size, reporting observed vs bounded decision rounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sskel_bench::{inputs, SEED};
use sskel_kset::{lemma11_bound, KSetAgreement};
use sskel_model::{run_lockstep, RunUntil, Schedule};
use sskel_predicates::{EventuallyStable, PartitionSchedule};

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    println!("E3: decision rounds vs the Lemma 11 bound rST + 2n − 1\n");
    println!(
        "{:>4} {:>6} {:>6} | {:>10} {:>10} {:>8} {:>10}",
        "n", "rST", "bound", "first dec", "last dec", "slack", "ok"
    );
    println!("{}", "-".repeat(64));

    for n in [4usize, 8, 12, 16, 24] {
        for chaos in [0u32, 2, 8, 20] {
            let base = PartitionSchedule::even(n, 2.min(n), 0);
            let s = EventuallyStable::new(base, chaos, 350, rng.gen());
            let bound = lemma11_bound(&s);
            let algs = KSetAgreement::spawn_all(n, &inputs(n));
            let (trace, _) = run_lockstep(
                &s,
                algs,
                RunUntil::AllDecided {
                    max_rounds: bound + 2,
                },
            );
            assert!(trace.all_decided(), "termination violated");
            let last = trace.last_decision_round().unwrap();
            assert!(last <= bound, "Lemma 11 bound violated");
            println!(
                "{:>4} {:>6} {:>6} | {:>10} {:>10} {:>8} {:>10}",
                n,
                s.stabilization_round(),
                bound,
                trace.first_decision_round().unwrap(),
                last,
                bound - last,
                "✓"
            );
        }
    }
    println!("\nevery run decided within rST + 2n − 1 (Lemma 11) ✓");
}
