//! **F1** — regenerates Figure 1 of the paper (machine-checkable form; the
//! graphical form is `cargo run --example figure1 -- --dot`).
//!
//! Prints each sub-figure as an edge list and checks the caption's claims.

use sskel_graph::dot::{digraph_to_ascii, labeled_to_ascii};
use sskel_graph::LabeledDigraph;
use sskel_kset::KSetAgreement;
use sskel_model::{run_lockstep_observed, RunUntil, Schedule, SkeletonTracker};
use sskel_predicates::{min_k_on_skeleton, root_component_count, Figure1Schedule};

fn main() {
    let schedule = Figure1Schedule::new();
    let p6 = Figure1Schedule::observed_process();

    let mut tracker = SkeletonTracker::new(6);
    tracker.observe(&schedule.graph(1));
    tracker.observe(&schedule.graph(2));

    println!("F1: Figure 1 of Biely/Robinson/Schmid 2011 (reconstruction)\n");
    println!("(a) G∩2: {}", digraph_to_ascii(tracker.current()));
    let stable = schedule.stable_skeleton();
    println!("(b) G∩∞: {}", digraph_to_ascii(&stable));
    println!(
        "    caption checks: Psrcs(3) tight (min_k = {}), root components = {}\n",
        min_k_on_skeleton(&stable),
        root_component_count(&stable),
    );

    let algs = KSetAgreement::spawn_all(6, &Figure1Schedule::example_inputs());
    let mut snaps: Vec<LabeledDigraph> = Vec::new();
    let (trace, _) = run_lockstep_observed(
        &schedule,
        algs,
        RunUntil::AllDecided { max_rounds: 30 },
        |r, states: &[KSetAgreement]| {
            if r <= 6 {
                snaps.push(states[p6.index()].approx_graph().clone());
            }
        },
    );
    for (i, snap) in snaps.iter().enumerate() {
        println!(
            "({}) G^{}_p6: {}",
            (b'c' + i as u8) as char,
            i + 1,
            labeled_to_ascii(snap)
        );
    }
    println!(
        "\ndecisions: {:?} ({} distinct ≤ k = 3), last at round {}",
        trace
            .decisions
            .iter()
            .flatten()
            .map(|d| (d.value, d.round))
            .collect::<Vec<_>>(),
        trace.distinct_decision_values().len(),
        trace.last_decision_round().unwrap()
    );
}
