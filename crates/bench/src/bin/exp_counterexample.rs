//! **E8** — the soundness finding: across random noisy `Psrcs(k)` runs,
//! the paper's literal decision rule (line 28) can exceed k decision
//! values; the freshness-guarded repair never does. Reports violation
//! rates per (n, k) cell plus the latency cost of the guard.
//!
//! See `tests/counterexample.rs` for the pinned minimal run and the
//! analysis of where Lemma 15's proof breaks.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_bench::{inputs, SEED};
use sskel_kset::{lemma11_bound, DecisionRule, KSetAgreement};
use sskel_model::parallel::{default_threads, par_map};
use sskel_model::Schedule;
use sskel_model::{run_lockstep, RunUntil};
use sskel_predicates::{min_k_on_skeleton, planted_psrcs_schedule};

fn main() {
    const SAMPLES: usize = 200;
    println!("E8: k-agreement violations of line 28 vs the freshness-guarded repair");
    println!("{SAMPLES} random noisy planted-Psrcs(k) runs per cell\n");
    println!(
        "{:>4} {:>3} | {:>14} {:>14} | {:>12} {:>12}",
        "n", "k", "paper viol.", "guarded viol.", "paper last", "guarded last"
    );
    println!("{}", "-".repeat(70));

    for (n, k) in [(6usize, 1usize), (8, 1), (8, 2), (10, 1), (10, 2), (12, 3)] {
        let jobs: Vec<u64> = (0..SAMPLES as u64).collect();
        let rows = par_map(jobs, default_threads(16), |i, _| {
            let mut rng =
                StdRng::seed_from_u64(SEED ^ ((n as u64) << 40) ^ ((k as u64) << 24) ^ i as u64);
            let s = planted_psrcs_schedule(&mut rng, n, k, 0.2, 350, 4);
            let tight = min_k_on_skeleton(&s.stable_skeleton());
            let ins = inputs(n);
            let mut out = [(false, 0u32); 2];
            for (slot, rule) in [DecisionRule::Paper, DecisionRule::FreshnessGuarded]
                .into_iter()
                .enumerate()
            {
                let algs = KSetAgreement::spawn_all_with(n, &ins, rule);
                let (trace, _) = run_lockstep(
                    &s,
                    algs,
                    RunUntil::AllDecided {
                        max_rounds: lemma11_bound(&s) + 2,
                    },
                );
                assert!(trace.all_decided(), "termination must hold");
                out[slot] = (
                    trace.distinct_decision_values().len() > tight,
                    trace.last_decision_round().unwrap(),
                );
            }
            out
        });

        let paper_viol = rows.iter().filter(|r| r[0].0).count();
        let guard_viol = rows.iter().filter(|r| r[1].0).count();
        let mean = |idx: usize| {
            rows.iter().map(|r| u64::from(r[idx].1)).sum::<u64>() as f64 / rows.len() as f64
        };
        assert_eq!(guard_viol, 0, "the repair must never violate");
        println!(
            "{:>4} {:>3} | {:>12.1} % {:>12.1} % | {:>12.1} {:>12.1}",
            n,
            k,
            100.0 * paper_viol as f64 / SAMPLES as f64,
            100.0 * guard_viol as f64 / SAMPLES as f64,
            mean(0),
            mean(1)
        );
    }
    println!(
        "\nthe literal rule violates k-agreement on a measurable fraction of\n\
         adversarially noisy runs (the Lemma 15 gap); the freshness guard\n\
         eliminates all violations at a small latency cost ✓"
    );
}
