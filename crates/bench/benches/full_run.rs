//! End-to-end Algorithm 1 runs: wall-clock per complete run (all processes
//! decided) across system shapes and sizes.

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sskel_bench::{inputs, ring_skeleton, std_schedule, SEED};
use sskel_kset::{lemma11_bound, KSetAgreement};
use sskel_model::{run_lockstep, FixedSchedule, RunUntil};

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for &n in &[8usize, 16, 32] {
        let sync = FixedSchedule::synchronous(n);
        let ring = FixedSchedule::new(ring_skeleton(n));
        let planted = std_schedule(SEED, n, 3.min(n));
        let ins = inputs(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("synchronous", n), &n, |b, _| {
            b.iter(|| {
                let algs = KSetAgreement::spawn_all(n, &ins);
                run_lockstep(
                    &sync,
                    algs,
                    RunUntil::AllDecided {
                        max_rounds: lemma11_bound(&sync) + 2,
                    },
                )
                .0
                .rounds_executed
            })
        });
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| {
                let algs = KSetAgreement::spawn_all(n, &ins);
                run_lockstep(
                    &ring,
                    algs,
                    RunUntil::AllDecided {
                        max_rounds: lemma11_bound(&ring) + 2,
                    },
                )
                .0
                .rounds_executed
            })
        });
        group.bench_with_input(BenchmarkId::new("planted_noisy", n), &n, |b, _| {
            b.iter(|| {
                let algs = KSetAgreement::spawn_all(n, &ins);
                run_lockstep(
                    &planted,
                    algs,
                    RunUntil::AllDecided {
                        max_rounds: lemma11_bound(&planted) + 2,
                    },
                )
                .0
                .rounds_executed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
