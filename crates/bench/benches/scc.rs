//! Tarjan vs Kosaraju vs the two-BFS strong-connectivity shortcut —
//! ablation for DESIGN.md §5.3 (the per-round line-28 test).

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_graph::{is_strongly_connected, kosaraju, rand_graph, tarjan, ProcessSet};

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[16usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(7);
        // ~4 out-edges per node: the interesting sparse regime
        let g = rand_graph::gnp(&mut rng, n, 4.0 / n as f64, true);
        let full = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("tarjan", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(tarjan(&g, &full).count()))
        });
        group.bench_with_input(BenchmarkId::new("kosaraju", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(kosaraju(&g, &full).count()))
        });
        group.bench_with_input(BenchmarkId::new("two_bfs_sc_test", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(is_strongly_connected(&g, &full)))
        });
    }
    group.finish();
}

fn bench_scc_on_sc_graph(c: &mut Criterion) {
    // strongly connected inputs: the common case for deciding processes
    let mut group = c.benchmark_group("scc_on_strongly_connected");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(9);
        let g = rand_graph::random_strongly_connected(&mut rng, n, 2.0 / n as f64);
        let full = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("tarjan", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(tarjan(&g, &full).count()))
        });
        group.bench_with_input(BenchmarkId::new("two_bfs_sc_test", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(is_strongly_connected(&g, &full)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scc, bench_scc_on_sc_graph);
criterion_main!(benches);
