//! Message codec: encode/decode throughput and wire sizes of Algorithm 1
//! round messages (§V: bit complexity polynomial in n).

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sskel_bench::ring_skeleton;
use sskel_graph::{Digraph, LabeledDigraph, ProcessId};
use sskel_kset::{KSetMsg, MsgKind};
use sskel_model::{Wire, WireSized};

fn msg_for(skeleton: &Digraph, label: u32) -> KSetMsg {
    let n = skeleton.n();
    let mut g = LabeledDigraph::new(n);
    for u in 0..n {
        for v in skeleton.out_neighbors(ProcessId::from_usize(u)).iter() {
            g.set_edge_max(ProcessId::from_usize(u), v, label);
        }
    }
    KSetMsg::new(MsgKind::Prop, 123, std::sync::Arc::new(g))
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[8usize, 32, 128] {
        for (shape, skel) in [
            ("dense", Digraph::complete(n)),
            ("sparse", ring_skeleton(n)),
        ] {
            let msg = msg_for(&skel, 17);
            let bytes = msg.to_bytes();
            group.throughput(Throughput::Bytes(bytes.len() as u64));
            let id = format!("{shape}_n{n}");
            group.bench_function(BenchmarkId::new("encode", &id), |b| {
                b.iter(|| std::hint::black_box(msg.to_bytes().len()))
            });
            group.bench_function(BenchmarkId::new("decode", &id), |b| {
                b.iter(|| {
                    let mut rd = bytes.clone();
                    std::hint::black_box(KSetMsg::decode(&mut rd).unwrap().wire_bytes())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
