//! Per-round cost of the skeleton-estimator update (Algorithm 1 lines
//! 14–25) as a function of `n` and skeleton density — ablation for
//! DESIGN.md §5.1.

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sskel_bench::ring_skeleton;
use sskel_graph::{Digraph, LabeledDigraph, ProcessId, Round};
use sskel_kset::SkeletonEstimator;

/// Builds the steady-state broadcast graphs of every process after `warm`
/// rounds on a fixed skeleton, then measures one more update at process 0.
fn steady_state(skeleton: &Digraph, warm: Round) -> (Vec<SkeletonEstimator>, Vec<LabeledDigraph>) {
    let n = skeleton.n();
    let mut ests: Vec<SkeletonEstimator> = (0..n)
        .map(|i| SkeletonEstimator::new(n, ProcessId::from_usize(i)))
        .collect();
    let mut broadcast: Vec<LabeledDigraph> = ests.iter().map(|e| e.graph().clone()).collect();
    for r in 1..=warm {
        let prev = broadcast;
        for (i, est) in ests.iter_mut().enumerate() {
            let me = ProcessId::from_usize(i);
            let pt = skeleton.in_neighbors(me).clone();
            est.update(r, &pt, pt.iter().map(|q| (q, &prev[q.index()])));
        }
        broadcast = ests.iter().map(|e| e.graph().clone()).collect();
    }
    (ests, broadcast)
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_update");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[8usize, 16, 32, 64] {
        for (density, skeleton) in [
            ("dense", Digraph::complete(n)),
            ("sparse", ring_skeleton(n)),
        ] {
            let warm = 2 * n as Round;
            let (mut ests, broadcast) = steady_state(&skeleton, warm);
            let me = ProcessId::new(0);
            let pt = skeleton.in_neighbors(me).clone();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(density, n), &n, |b, _| {
                // Keep ONE warm estimator (cloning it per iteration would
                // share the Arc buffers and bench the allocating fallback)
                // and re-run the round-(warm + 1) update against the frozen
                // broadcasts: the state reaches a fixed point after the
                // first iteration, so every measured iteration performs the
                // full steady-state merge/purge/retain at realistic labels.
                let est = &mut ests[0];
                let r = warm + 1;
                b.iter(|| {
                    est.update(r, &pt, pt.iter().map(|q| (q, &broadcast[q.index()])));
                    std::hint::black_box(est.graph().edge_count())
                })
            });
        }
    }
    group.finish();
}

fn bench_decision_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_test");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[8usize, 16, 32, 64] {
        let (mut ests, _) = steady_state(&Digraph::complete(n), 2 * n as Round);
        group.bench_with_input(BenchmarkId::new("strongly_connected", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(ests[0].is_strongly_connected()))
        });
        group.bench_with_input(BenchmarkId::new("coherently_fresh", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(ests[0].is_coherently_fresh(2 * n as Round)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_decision_test);
criterion_main!(benches);
