//! `Psrcs(k)` checking: literal subset enumeration vs the
//! independence-number formulation — ablation for DESIGN.md §5.2.

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_graph::ProcessId;
use sskel_predicates::{planted_psrcs_skeleton, psrcs};

fn pt_sets(skel: &sskel_graph::Digraph) -> Vec<sskel_graph::ProcessSet> {
    (0..skel.n())
        .map(|p| skel.in_neighbors(ProcessId::from_usize(p)).clone())
        .collect()
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("psrcs_check");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &(n, k) in &[(12usize, 2usize), (12, 3), (16, 2), (16, 3), (20, 2)] {
        let mut rng = StdRng::seed_from_u64(42);
        let (skel, _) = planted_psrcs_skeleton(&mut rng, n, k, 0.08);
        let pt = pt_sets(&skel);
        let id = format!("n{n}_k{k}");
        group.bench_with_input(BenchmarkId::new("naive_subsets", &id), &k, |b, &k| {
            b.iter(|| std::hint::black_box(psrcs::holds_naive(&pt, k)))
        });
        group.bench_with_input(BenchmarkId::new("alpha_mis", &id), &k, |b, &k| {
            b.iter(|| std::hint::black_box(psrcs::holds(&pt, k)))
        });
    }
    group.finish();
}

fn bench_min_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_k");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[16usize, 32, 64, 96] {
        let mut rng = StdRng::seed_from_u64(7);
        let (skel, _) = planted_psrcs_skeleton(&mut rng, n, (n / 8).max(1), 0.05);
        let pt = pt_sets(&skel);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(psrcs::min_k(&pt)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkers, bench_min_k);
criterion_main!(benches);
