//! Lockstep vs threaded engine, and the spin barrier vs `std::sync::Barrier`
//! — ablation for DESIGN.md §5.4.

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sskel_bench::inputs;
use sskel_kset::KSetAgreement;
use sskel_model::sync::{ParkingBarrier, SpinBarrier};
use sskel_model::{run_lockstep, run_threaded, FixedSchedule, RunUntil};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        let s = FixedSchedule::synchronous(n);
        let ins = inputs(n);
        let until = RunUntil::AllDecided {
            max_rounds: 2 * n as u32 + 2,
        };
        group.bench_with_input(BenchmarkId::new("lockstep", n), &n, |b, _| {
            b.iter(|| {
                run_lockstep(&s, KSetAgreement::spawn_all(n, &ins), until)
                    .0
                    .rounds_executed
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until)
                    .0
                    .rounds_executed
            })
        });
    }
    group.finish();
}

fn bench_barriers(c: &mut Criterion) {
    const ROUNDS: usize = 1000;
    let mut group = c.benchmark_group("barrier_1000_rounds");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("spin", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(SpinBarrier::new(threads));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let bar = Arc::clone(&barrier);
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    bar.wait();
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("park", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(ParkingBarrier::new(threads));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let bar = Arc::clone(&barrier);
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    bar.wait();
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("std", threads), &threads, |b, &threads| {
            b.iter(|| {
                let barrier = Arc::new(std::sync::Barrier::new(threads));
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let bar = Arc::clone(&barrier);
                        scope.spawn(move || {
                            for _ in 0..ROUNDS {
                                bar.wait();
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_barriers);
criterion_main!(benches);
