//! Lockstep vs threaded vs sharded engine, and the spin barrier vs
//! `std::sync::Barrier` — ablation for DESIGN.md §5.4 and
//! docs/CONCURRENCY.md.

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sskel_bench::{inputs, ring_with_chords};
use sskel_kset::KSetAgreement;
use sskel_model::sync::{ParkingBarrier, SpinBarrier, WindowedBarrier};
use sskel_model::{run_lockstep, run_sharded, run_threaded, FixedSchedule, RunUntil, ShardPlan};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        let s = FixedSchedule::synchronous(n);
        let ins = inputs(n);
        let until = RunUntil::AllDecided {
            max_rounds: 2 * n as u32 + 2,
        };
        group.bench_with_input(BenchmarkId::new("lockstep", n), &n, |b, _| {
            b.iter(|| {
                run_lockstep(&s, KSetAgreement::spawn_all(n, &ins), until)
                    .0
                    .rounds_executed
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until)
                    .0
                    .rounds_executed
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded4", n), &n, |b, _| {
            b.iter(|| {
                run_sharded(
                    &s,
                    KSetAgreement::spawn_all(n, &ins),
                    until,
                    ShardPlan::new(4),
                )
                .0
                .rounds_executed
            })
        });
    }
    group.finish();
}

/// Fixed-horizon runs at large n over a sparse skeleton: the regime the
/// sharded engine exists for. One thread per process (`threaded`) pays a
/// context switch per process per round; `sharded` pays at most one park
/// per shard per window.
fn bench_engines_large_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_large_n");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let n = 256usize;
    let s = FixedSchedule::new(ring_with_chords(n, 8));
    let ins = inputs(n);
    let until = RunUntil::Rounds(6);
    group.bench_function(BenchmarkId::new("threaded", n), |b| {
        b.iter(|| {
            run_threaded(&s, KSetAgreement::spawn_all(n, &ins), until)
                .0
                .rounds_executed
        })
    });
    for &shards in &[1usize, 4] {
        group.bench_function(BenchmarkId::new(format!("sharded{shards}_w4"), n), |b| {
            b.iter(|| {
                run_sharded(
                    &s,
                    KSetAgreement::spawn_all(n, &ins),
                    until,
                    ShardPlan::new(shards).with_window(4),
                )
                .0
                .rounds_executed
            })
        });
    }
    group.finish();
}

fn bench_barriers(c: &mut Criterion) {
    const ROUNDS: usize = 1000;
    let mut group = c.benchmark_group("barrier_1000_rounds");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("spin", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(SpinBarrier::new(threads));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let bar = Arc::clone(&barrier);
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    bar.wait();
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("park", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(ParkingBarrier::new(threads));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let bar = Arc::clone(&barrier);
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    bar.wait();
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("windowed8", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let barrier = Arc::new(WindowedBarrier::new(threads, 8));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let bar = Arc::clone(&barrier);
                            scope.spawn(move || {
                                for r in 1..=ROUNDS as u32 {
                                    bar.round_end(r);
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("std", threads), &threads, |b, &threads| {
            b.iter(|| {
                let barrier = Arc::new(std::sync::Barrier::new(threads));
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let bar = Arc::clone(&barrier);
                        scope.spawn(move || {
                            for _ in 0..ROUNDS {
                                bar.wait();
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_engines_large_n,
    bench_barriers
);
criterion_main!(benches);
