//! Bitset graph primitives: the word-parallel operations everything else
//! is built on (skeleton intersection, reachability, set algebra).

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_graph::{rand_graph, reach, LabeledDigraph, ProcessId, ProcessSet, Round};

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_intersection");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = rand_graph::gnp(&mut rng, n, 0.3, true);
        let b = rand_graph::gnp(&mut rng, n, 0.3, true);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = a.clone();
                g.intersect_with(&b);
                std::hint::black_box(g.edge_count())
            })
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = rand_graph::gnp(&mut rng, n, 3.0 / n as f64, true);
        let full = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("descendants", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(reach::descendants(&g, ProcessId::new(0), &full).len()))
        });
        group.bench_with_input(BenchmarkId::new("ancestors", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(reach::ancestors(&g, ProcessId::new(0), &full).len()))
        });
    }
    group.finish();
}

/// `n` labelled graphs of the given density over a universe of `n`, with
/// labels in a band like the estimator's steady state.
fn labelled_batch(rng: &mut StdRng, n: usize, p: f64) -> Vec<LabeledDigraph> {
    (0..n)
        .map(|i| {
            let skel = rand_graph::gnp(rng, n, p, true);
            let mut g = LabeledDigraph::new(n);
            for u in 0..n {
                let pu = ProcessId::from_usize(u);
                for v in skel.out_neighbors(pu).iter() {
                    g.set_edge_max(pu, v, (n + u + i) as Round);
                }
            }
            g
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_max");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[32usize, 64] {
        for (density, p) in [("dense", 0.9), ("sparse", 3.0 / n as f64)] {
            let mut rng = StdRng::seed_from_u64(7);
            let batch = labelled_batch(&mut rng, n, p);
            let refs: Vec<&LabeledDigraph> = batch.iter().collect();
            let seed = ProcessId::new(0);
            let id = format!("{density}_n{n}");
            // One round's worth of received graphs, folded one at a time …
            group.bench_function(BenchmarkId::new("sequential", &id), |b| {
                let mut acc = LabeledDigraph::with_node(n, seed);
                b.iter(|| {
                    acc.reset_to_node(seed);
                    for g in &batch {
                        acc.merge_max(g);
                    }
                    std::hint::black_box(acc.edge_count())
                })
            });
            // … versus the single row-major batched pass.
            group.bench_function(BenchmarkId::new("batch", &id), |b| {
                let mut acc = LabeledDigraph::with_node(n, seed);
                b.iter(|| {
                    acc.reset_to_node(seed);
                    acc.merge_max_batch(&refs);
                    std::hint::black_box(acc.edge_count())
                })
            });
        }
    }
    group.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_set");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[256usize, 4096] {
        let mut rng = StdRng::seed_from_u64(11);
        let a = rand_graph::random_subset(&mut rng, n, 0.5);
        let b = rand_graph::random_subset(&mut rng, n, 0.5);
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| {
                let mut s = a.clone();
                s.intersect_with(&b);
                std::hint::black_box(s.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("iterate", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.iter().map(|p| p.index()).sum::<usize>()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_reachability,
    bench_merge,
    bench_set_ops
);
criterion_main!(benches);
