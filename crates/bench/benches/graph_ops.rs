//! Bitset graph primitives: the word-parallel operations everything else
//! is built on (skeleton intersection, reachability, set algebra).

#![allow(missing_docs)] // criterion macros generate undocumented items

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel_graph::{rand_graph, reach, ProcessId, ProcessSet};

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_intersection");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = rand_graph::gnp(&mut rng, n, 0.3, true);
        let b = rand_graph::gnp(&mut rng, n, 0.3, true);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = a.clone();
                g.intersect_with(&b);
                std::hint::black_box(g.edge_count())
            })
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = rand_graph::gnp(&mut rng, n, 3.0 / n as f64, true);
        let full = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("descendants", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(reach::descendants(&g, ProcessId::new(0), &full).len()))
        });
        group.bench_with_input(BenchmarkId::new("ancestors", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(reach::ancestors(&g, ProcessId::new(0), &full).len()))
        });
    }
    group.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_set");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &n in &[256usize, 4096] {
        let mut rng = StdRng::seed_from_u64(11);
        let a = rand_graph::random_subset(&mut rng, n, 0.5);
        let b = rand_graph::random_subset(&mut rng, n, 0.5);
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| {
                let mut s = a.clone();
                s.intersect_with(&b);
                std::hint::black_box(s.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("iterate", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.iter().map(|p| p.index()).sum::<usize>()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_reachability,
    bench_set_ops
);
criterion_main!(benches);
