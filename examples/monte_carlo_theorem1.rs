//! Monte-Carlo validation of Theorem 1, fanned out across CPU cores.
//!
//! Theorem 1: a run admissible in system `Psrcs(k)` has at most `k` root
//! components in its stable skeleton. We sample thousands of random planted
//! `Psrcs(k)` skeletons (plus transient noise), evaluate the *tight* k
//! (`min_k = α(H)`), count root components, and check
//! `roots ≤ min_k ≤ planted k` on every sample — in parallel via the
//! self-scheduling worker pool.
//!
//! ```text
//! cargo run --release --example monte_carlo_theorem1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sskel::model::parallel::{default_threads, par_map};
use sskel::prelude::*;

fn main() {
    let samples = 4000usize;
    let threads = default_threads(16);
    println!("Theorem 1 Monte-Carlo: {samples} samples on {threads} threads\n");

    let jobs: Vec<u64> = (0..samples as u64).collect();
    let results = par_map(jobs, threads, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4 + (seed % 29) as usize; // n ∈ [4, 32]
        let k = 1 + (seed % n as u64 % 6) as usize; // k ∈ [1, min(n, 6)]
        let (skel, _) = planted_psrcs_skeleton(&mut rng, n, k, 0.08);

        let roots = root_component_count(&skel);
        let mk = min_k_on_skeleton(&skel);
        assert!(
            mk <= k,
            "planted certificate broken: min_k {mk} > planted k {k} (n={n})"
        );
        assert!(
            roots <= mk,
            "THEOREM 1 VIOLATED: {roots} roots > min_k {mk} (n={n}, seed={seed})"
        );
        (k, mk, roots)
    });

    // aggregate: histogram of (min_k − roots) slack
    let mut slack_hist = [0usize; 8];
    let mut tight = 0usize;
    for &(_, mk, roots) in &results {
        let slack = (mk - roots).min(7);
        slack_hist[slack] += 1;
        if mk == roots {
            tight += 1;
        }
    }

    println!("{:>12} {:>10}", "min_k−roots", "samples");
    for (s, count) in slack_hist.iter().enumerate() {
        if *count > 0 {
            println!("{s:>12} {count:>10}");
        }
    }
    println!(
        "\nall {samples} samples satisfy roots ≤ min_k (Theorem 1) ✓   \
         bound tight in {:.1}% of samples",
        100.0 * tight as f64 / samples as f64
    );
}
