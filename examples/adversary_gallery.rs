//! Adversary gallery: run Algorithm 1 against every seedable message
//! adversary family and verify the paper's properties under fire.
//!
//! ```text
//! cargo run --example adversary_gallery [seed]
//! ```
//!
//! Every schedule here streams lazily from a `u64` seed — pass a different
//! one to watch the structure (root components, `min_k`, stabilization
//! round, decision spread) change while validity, k-agreement at the tight
//! `k`, and the Lemma-11 termination bound keep holding.

use sskel::prelude::*;

fn run_and_report<S: Schedule>(name: &str, schedule: &S) {
    let n = schedule.n();
    let skel = schedule.stable_skeleton();
    let k = min_k_on_skeleton(&skel);
    let roots = root_component_count(&skel);
    let r_st = schedule.stabilization_round();
    let bound = lemma11_bound(schedule);

    validate_schedule(schedule, bound + 2).expect("adversary violates the schedule contract");

    let inputs: Vec<Value> = (0..n as Value).map(|i| 10 + 7 * i).collect();
    // FreshnessGuarded: the literal line-28 rule is unsound under exactly
    // the transient early edges these adversaries specialize in.
    let algs = KSetAgreement::spawn_all_with(n, &inputs, DecisionRule::FreshnessGuarded);
    let (trace, _) = run_lockstep(
        schedule,
        algs,
        RunUntil::AllDecided {
            max_rounds: bound + 2,
        },
    );
    verify(
        &trace,
        &VerifySpec::new(k, inputs).with_lemma11_bound(schedule),
    )
    .assert_ok();

    println!("── {name}");
    println!("   n = {n}, rST = {r_st}, root components = {roots}, min_k = {k}");
    println!(
        "   decided {} distinct value(s) ≤ k = {k}, last at round {} ≤ bound {bound}",
        trace.distinct_decision_values().len(),
        trace.last_decision_round().expect("all decided"),
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| {
            s.strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|_| panic!("seed {s:?} must be a u64 (decimal or 0x-hex)"))
        })
        .unwrap_or(0x5eed_ca11);
    println!("adversary gallery (seed {seed:#x})\n");

    let n = 12;
    run_and_report(
        "stable roots in noise (vertex-stable root components)",
        &StableRootAdversary::sample(n, seed),
    );
    run_and_report(
        "rotating root (worst-case hostile prefix)",
        &RotatingRootAdversary::sample(n, seed),
    );
    run_and_report(
        "crash faults over a synchronous base",
        &CrashOverlay::seeded(FixedSchedule::synchronous(n), n / 3, seed),
    );
    run_and_report(
        "transient partitions that heal",
        &HealedPartitionAdversary::sample(n, seed),
    );
    run_and_report("bounded-change churn", &ChurnAdversary::sample(n, seed));
    run_and_report(
        "Theorem-2 lower bound (seeded)",
        &LowerBoundAdversary::sample(n, seed),
    );
    run_and_report(
        "crash ∘ partition ∘ stable-tail (composed)",
        &CrashOverlay::seeded(HealedPartitionAdversary::sample(n, seed), 2, seed),
    );

    println!("\nall adversaries verified: validity ✓  k-agreement ✓  termination ✓");
}
