//! Algorithm 1 at n = 256 on 4 worker threads — the sharded engine.
//!
//! One-thread-per-process simulation stops scaling long before n = 256 on a
//! small machine: every simulated round costs hundreds of context switches,
//! and channel-per-process delivery thrashes the scheduler. The sharded
//! engine assigns 64 processes to each of 4 threads, delivers intra-shard
//! messages by direct `Arc` hand-off (no channel), and closes only every
//! 4th round with a windowed barrier — bounding the inter-shard round skew
//! (and with it the channel backlog) without paying a barrier per round.
//!
//! The run is then checked against the lockstep engine: traces and final
//! estimator states must be identical, because a run of the paper's model
//! is fully determined by inputs plus the graph sequence.
//!
//! ```text
//! cargo run --release --example sharded_large_n
//! ```

use std::time::Instant;

use sskel::prelude::*;

fn main() {
    let n = 256;
    let horizon = 48;
    let schedule = sparse_racks(n);
    let inputs: Vec<Value> = (0..n as Value).map(|i| 10_000 - i).collect();
    // A fixed horizon keeps the demo short: decisions need r ≥ n = 256
    // rounds, but the estimator does its full per-round work from round 1,
    // which is what we want to time.
    let until = RunUntil::Rounds(horizon);
    let plan = ShardPlan::new(4).with_window(4);

    println!(
        "running Algorithm 1: n = {n} processes on {} threads \
         ({} processes per shard, barrier every {} rounds)…",
        plan.shards,
        n / plan.shards,
        plan.window
    );
    let t0 = Instant::now();
    let (sharded, finals_sharded) =
        run_sharded(&schedule, KSetAgreement::spawn_all(n, &inputs), until, plan);
    let sharded_time = t0.elapsed();
    println!(
        "  sharded : {sharded_time:?}  ({} rounds, {} broadcasts, {} deliveries)",
        sharded.rounds_executed, sharded.msg_stats.broadcasts, sharded.msg_stats.deliveries
    );

    println!("replaying on the single-threaded lockstep engine…");
    let t0 = Instant::now();
    let (lockstep, finals_lockstep) =
        run_lockstep(&schedule, KSetAgreement::spawn_all(n, &inputs), until);
    let lockstep_time = t0.elapsed();
    println!("  lockstep: {lockstep_time:?}");

    assert_eq!(sharded.decisions, lockstep.decisions, "engines diverged!");
    assert_eq!(sharded.msg_stats, lockstep.msg_stats);
    assert_eq!(sharded.rounds_executed, lockstep.rounds_executed);
    for (a, b) in finals_sharded.iter().zip(&finals_lockstep) {
        assert_eq!(a.approx_graph(), b.approx_graph(), "estimator diverged");
        assert_eq!(a.estimate(), b.estimate());
    }
    println!("identical traces and estimator states ✓");

    // What the estimators learned so far: every G_p already spans the
    // whole reachable past of p, well before the r ≥ n decision gate.
    let nodes: Vec<usize> = finals_sharded
        .iter()
        .map(|a| a.approx_graph().node_count())
        .collect();
    println!(
        "  after {horizon} rounds each G_p holds {}–{} of {n} nodes; \
         wire traffic {:.1} MiB",
        nodes.iter().min().unwrap(),
        nodes.iter().max().unwrap(),
        sharded.msg_stats.delivered_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  (try the same n with run_threaded: 256 OS threads, one context \
         switch per process per round — the sharded plan exists so you \
         don't have to)"
    );
}

/// A sparse strongly connected system: 4 racks of n/4 nodes, each rack a
/// ring, racks chained into a cycle — diameter Θ(n), the hard case for
/// skeleton estimation, with ~1.3 edges per node per round.
fn sparse_racks(n: usize) -> FixedSchedule {
    let mut skel = Digraph::empty(n);
    skel.add_self_loops();
    let racks = 4;
    let per = n / racks;
    for rack in 0..racks {
        let base = rack * per;
        for i in 0..per {
            skel.add_edge(
                ProcessId::from_usize(base + i),
                ProcessId::from_usize(base + (i + 1) % per),
            );
        }
        // each rack's head feeds the next rack
        skel.add_edge(
            ProcessId::from_usize(base),
            ProcessId::from_usize((base + per) % n),
        );
    }
    FixedSchedule::new(skel)
}
