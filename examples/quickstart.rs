//! Quickstart: run Algorithm 1 on three archetypal systems and verify the
//! k-set agreement properties.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sskel::prelude::*;

fn run_and_report<S: Schedule>(name: &str, schedule: &S, inputs: &[Value]) {
    let n = schedule.n();
    let k = guaranteed_k(schedule); // tightest k with Psrcs(k)
    let bound = lemma11_bound(schedule);

    let algs = KSetAgreement::spawn_all(n, inputs);
    let (trace, _) = run_lockstep(
        schedule,
        algs,
        RunUntil::AllDecided {
            max_rounds: bound + 5,
        },
    );

    let spec = VerifySpec::new(k, inputs.to_vec()).with_lemma11_bound(schedule);
    let verdict = verify(&trace, &spec);
    verdict.assert_ok();

    println!("── {name}");
    if k > 1 {
        println!(
            "   n = {n}, min_k = {k} (Psrcs({k}) holds, Psrcs({}) does not)",
            k - 1
        );
    } else {
        println!("   n = {n}, min_k = 1 (Psrcs(1) holds ⇒ consensus)");
    }
    println!(
        "   decided values: {:?} ({} distinct ≤ k = {k})",
        trace.distinct_decision_values(),
        trace.distinct_decision_values().len()
    );
    println!(
        "   last decision at round {} (Lemma 11 bound: {bound})",
        trace.last_decision_round().unwrap()
    );
    println!(
        "   traffic: {} broadcasts, {} bytes delivered",
        trace.msg_stats.broadcasts, trace.msg_stats.delivered_bytes
    );
}

fn main() {
    // 1. Fully synchronous system: Psrcs(1) ⇒ Algorithm 1 reaches consensus.
    let sync = FixedSchedule::synchronous(6);
    run_and_report("synchronous (consensus)", &sync, &[60, 50, 40, 30, 20, 10]);

    // 2. The paper's Figure 1 run: Psrcs(3) tight, two root components.
    let fig1 = Figure1Schedule::new();
    run_and_report(
        "Figure 1 run (Psrcs(3))",
        &fig1,
        &Figure1Schedule::example_inputs(),
    );

    // 3. The Theorem 2 lower-bound run: Psrcs(4) tight, and any correct
    //    algorithm is forced into exactly 4 distinct values.
    let t2 = Theorem2Schedule::new(8, 4);
    let inputs: Vec<Value> = (0..8).collect();
    run_and_report("Theorem 2 lower bound (k = 4)", &t2, &inputs);

    println!("\nall runs verified: validity ✓  k-agreement ✓  termination ✓");
}
