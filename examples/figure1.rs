//! Regenerates Figure 1 of the paper: the stable skeleton of a 6-process
//! run satisfying `Psrcs(3)`, and process p6's approximation `G^r_{p6}`
//! over rounds 1–6 (sub-figures 1a–1h).
//!
//! ```text
//! cargo run --example figure1            # ASCII rendering
//! cargo run --example figure1 -- --dot   # Graphviz DOT on stdout
//! ```

use sskel::graph::dot::{digraph_to_ascii, labeled_to_ascii};
use sskel::graph::dot::{digraph_to_dot, labeled_to_dot, DotOptions};
use sskel::prelude::*;

fn main() {
    let dot_mode = std::env::args().any(|a| a == "--dot");
    let schedule = Figure1Schedule::new();
    let p6 = Figure1Schedule::observed_process();

    // --- Fig. 1a: G∩2 ---
    let mut tracker = SkeletonTracker::new(6);
    tracker.observe(&schedule.graph(1));
    tracker.observe(&schedule.graph(2));
    let g_cap2 = tracker.current().clone();

    // --- Fig. 1b: G∩∞ ---
    let stable = schedule.stable_skeleton();

    // --- Figs. 1c–1h: p6's approximation over rounds 1..6 ---
    let algs = KSetAgreement::spawn_all(6, &Figure1Schedule::example_inputs());
    let mut snapshots: Vec<LabeledDigraph> = Vec::new();
    let (_, _) = run_lockstep_observed(
        &schedule,
        algs,
        RunUntil::Rounds(6),
        |_r, states: &[KSetAgreement]| {
            snapshots.push(states[p6.index()].approx_graph().clone());
        },
    );

    if dot_mode {
        let mut opts = DotOptions {
            name: "fig1a_G_cap_2".into(),
            ..DotOptions::default()
        };
        print!("{}", digraph_to_dot(&g_cap2, &opts));
        opts.name = "fig1b_G_cap_inf".into();
        print!("{}", digraph_to_dot(&stable, &opts));
        for (i, snap) in snapshots.iter().enumerate() {
            opts.name = format!("fig1{}_G_p6_round_{}", (b'c' + i as u8) as char, i + 1);
            print!("{}", labeled_to_dot(snap, &opts));
        }
        return;
    }

    println!("Figure 1 — 6 processes, Psrcs(3) holds (self-loops omitted)\n");
    println!("(a) G∩2       : {}", digraph_to_ascii(&g_cap2));
    println!("(b) G∩∞       : {}", digraph_to_ascii(&stable));
    println!(
        "    root components: {:?}, min_k = {}\n",
        Figure1Schedule::root_components(),
        min_k_on_skeleton(&stable)
    );
    for (i, snap) in snapshots.iter().enumerate() {
        println!(
            "({}) G^{}_p6    : {}",
            (b'c' + i as u8) as char,
            i + 1,
            labeled_to_ascii(snap)
        );
    }
    println!("\nNote: transient round-1/2 edges (p2→p3, p6→p4) enter p6's");
    println!("approximation with old labels and age out after n = 6 rounds,");
    println!("exactly the mechanism Figures 1c–1h of the paper illustrate.");
}
