//! Theorem 2, executed: `Psrcs(k)` is too weak for `(k−1)`-set agreement.
//!
//! The paper proves this by constructing, for any `1 < k < n`, a run where
//! `k − 1` processes hear only themselves and everybody else hears one
//! common source `s`. We run Algorithm 1 — a *correct* k-set agreement
//! algorithm — on exactly that run and watch it produce exactly `k`
//! distinct values, demonstrating that no algorithm could do better.
//!
//! ```text
//! cargo run --example tight_lower_bound
//! ```

use sskel::prelude::*;

fn main() {
    println!("k-set agreement lower bound (Theorem 2): runs forcing k values\n");
    println!(
        "{:>4} {:>4} | {:>8} {:>14} {:>12}",
        "n", "k", "min_k", "distinct vals", "last round"
    );
    println!("{}", "-".repeat(50));

    for (n, k) in [(4usize, 2usize), (6, 3), (8, 4), (12, 6), (16, 8), (24, 12)] {
        let schedule = Theorem2Schedule::new(n, k);
        let inputs: Vec<Value> = (0..n as Value).collect(); // pairwise distinct

        let algs = KSetAgreement::spawn_all(n, &inputs);
        let bound = lemma11_bound(&schedule);
        let (trace, _) = run_lockstep(
            &schedule,
            algs,
            RunUntil::AllDecided {
                max_rounds: bound + 5,
            },
        );

        // Correct as k-set agreement…
        verify(
            &trace,
            &VerifySpec::new(k, inputs).with_lemma11_bound(&schedule),
        )
        .assert_ok();
        let distinct = trace.distinct_decision_values().len();
        // …and the adversary forces exactly k values: (k−1)-agreement is out.
        assert_eq!(distinct, k, "lower bound must be achieved");

        println!(
            "{:>4} {:>4} | {:>8} {:>14} {:>12}",
            n,
            k,
            guaranteed_k(&schedule),
            distinct,
            trace.last_decision_round().unwrap()
        );
    }

    println!("\neach run satisfies Psrcs(k) yet yields k distinct decisions:");
    println!("no algorithm solves (k−1)-set agreement in system Psrcs(k).  ∎");
}
