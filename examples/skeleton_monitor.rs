//! The stable-skeleton estimator as a standalone synchrony monitor.
//!
//! The paper stresses that the approximation of lines 14–25 is correct in
//! *every* run, independent of any communication predicate — so it can be
//! used on its own to watch a system's "perpetual synchrony core" shrink as
//! links degrade. Here a 8-node system loses links over time and a chosen
//! observer's approximation tracks the ground-truth skeleton (with bounded
//! lag), without any agreement being attempted.
//!
//! ```text
//! cargo run --example skeleton_monitor
//! ```

use sskel::graph::dot::labeled_to_ascii;
use sskel::prelude::*;

/// Links fail permanently at scripted rounds.
struct DegradingSchedule {
    n: usize,
    failures: Vec<(usize, usize, Round)>, // (from, to, fails_at)
}

impl Schedule for DegradingSchedule {
    fn n(&self) -> usize {
        self.n
    }
    fn graph(&self, r: Round) -> Digraph {
        let mut g = Digraph::complete(self.n);
        for &(u, v, at) in &self.failures {
            if r >= at {
                g.remove_edge(ProcessId::from_usize(u), ProcessId::from_usize(v));
            }
        }
        g
    }
    fn stabilization_round(&self) -> Round {
        self.failures
            .iter()
            .map(|&(_, _, at)| at)
            .max()
            .unwrap_or(1)
    }
}

fn main() {
    let n = 8;
    let schedule = DegradingSchedule {
        n,
        failures: vec![
            (0, 3, 2),
            (0, 4, 2),
            (1, 3, 4),
            (2, 5, 5),
            (6, 0, 6),
            (6, 1, 6),
            (7, 2, 8),
        ],
    };
    let observer = ProcessId::new(3);

    // Algorithm 1 instances serve as skeleton monitors; inputs irrelevant.
    let algs = KSetAgreement::spawn_all(n, &vec![0; n]);
    let mut truth = SkeletonTracker::new(n);

    println!("observer {observer}: local approximation vs ground-truth skeleton\n");
    let (_, _) = run_lockstep_observed(
        &schedule,
        algs,
        RunUntil::Rounds(14),
        |r, states: &[KSetAgreement]| {
            truth.observe(&schedule.graph(r));
            let approx = states[observer.index()].approx_graph();
            println!("round {r:>2}: {}", labeled_to_ascii(approx));
            // Lemma 5: the observer's own strongly connected component is
            // always fully contained in its approximation once r ≥ n.
            if r >= n as Round {
                let comp = sskel::graph::tarjan(truth.current(), &ProcessSet::full(n))
                    .component_of(observer)
                    .cloned()
                    .unwrap();
                assert!(
                    comp.is_subset_of(approx.nodes()),
                    "Lemma 5 violated at round {r}"
                );
            }
        },
    );

    println!(
        "\nground truth G∩14: {}",
        sskel::graph::dot::digraph_to_ascii(truth.current())
    );
    println!("(Lemma 5 checked each round from r = n on: C^r_p ⊆ G_p)");
}
