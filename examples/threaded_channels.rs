//! Algorithm 1 over real OS threads and message channels.
//!
//! One thread per process, crossbeam channels for round messages, and a
//! parking barrier closing each round — then the exact same run replayed on
//! the deterministic lockstep engine to confirm the traces are identical.
//!
//! ```text
//! cargo run --release --example threaded_channels
//! ```

use std::time::Instant;

use sskel::prelude::*;

fn main() {
    let n = 16;
    let schedule = Figure1ishSchedule::build(n);
    let inputs: Vec<Value> = (0..n as Value).map(|i| 1000 - i).collect();
    let until = RunUntil::AllDecided {
        max_rounds: lemma11_bound(&schedule) + 5,
    };

    println!("running Algorithm 1 on {n} OS threads (channels + parking barrier)…");
    let t0 = Instant::now();
    let (threaded, _) = run_threaded(&schedule, KSetAgreement::spawn_all(n, &inputs), until);
    let threaded_time = t0.elapsed();

    let t0 = Instant::now();
    let (lockstep, _) = run_lockstep(&schedule, KSetAgreement::spawn_all(n, &inputs), until);
    let lockstep_time = t0.elapsed();

    assert_eq!(threaded.decisions, lockstep.decisions, "engines diverged!");
    assert_eq!(threaded.msg_stats, lockstep.msg_stats);
    assert_eq!(threaded.rounds_executed, lockstep.rounds_executed);

    verify(
        &threaded,
        &VerifySpec::new(guaranteed_k(&schedule), inputs).with_lemma11_bound(&schedule),
    )
    .assert_ok();

    println!("identical traces ✓");
    println!(
        "  rounds: {}, decisions: {:?}",
        threaded.rounds_executed,
        threaded.distinct_decision_values()
    );
    println!(
        "  threaded: {threaded_time:?}   lockstep: {lockstep_time:?} \
         (threads pay real synchronization costs at this tiny scale)"
    );
}

/// A mid-size system: two strongly connected "racks" of n/2 nodes each,
/// one of which also feeds the other — a single root component.
struct Figure1ishSchedule;

impl Figure1ishSchedule {
    fn build(n: usize) -> NoisySchedule {
        let mut skel = Digraph::empty(n);
        skel.add_self_loops();
        let half = n / 2;
        for i in 0..half {
            skel.add_edge(
                ProcessId::from_usize(i),
                ProcessId::from_usize((i + 1) % half),
            );
        }
        for i in half..n {
            skel.add_edge(
                ProcessId::from_usize(i),
                ProcessId::from_usize(half + (i + 1 - half) % (n - half)),
            );
        }
        // rack 1 feeds rack 2
        skel.add_edge(ProcessId::new(0), ProcessId::from_usize(half));
        NoisySchedule::new(skel, 200, 6, 42)
    }
}
