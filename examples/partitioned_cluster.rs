//! Partitionable-system scenario from the paper's introduction: a cluster
//! that splits into partitions "needs to reach consensus in every
//! partition" — which is exactly k-set agreement with k = number of
//! partitions.
//!
//! A 12-node cluster splits into 3 isolated segments. Algorithm 1 (which
//! never learns `k`!) automatically degrades to 3-set agreement: each
//! segment internally reaches consensus. Run twice:
//!
//! * split from round 1 — each segment decides its own minimum (3 values);
//! * split after a healthy prefix — estimates gossiped across the cluster
//!   before the split can collapse the count further (fewer values is
//!   always allowed by k-agreement; intra-segment consensus still holds).
//!
//! ```text
//! cargo run --example partitioned_cluster
//! ```

use sskel::prelude::*;

fn run_case(label: &str, prefix_rounds: Round) -> usize {
    let n = 12;
    let blocks = vec![
        ProcessSet::from_indices(n, 0..5),
        ProcessSet::from_indices(n, 5..9),
        ProcessSet::from_indices(n, 9..12),
    ];
    let schedule = PartitionSchedule::new(n, blocks.clone(), prefix_rounds);

    // node i proposes 100 + i
    let inputs: Vec<Value> = (0..n as Value).map(|i| 100 + i).collect();
    let algs = KSetAgreement::spawn_all(n, &inputs);
    let bound = lemma11_bound(&schedule);
    let (trace, finals) = run_lockstep(
        &schedule,
        algs,
        RunUntil::AllDecided {
            max_rounds: bound + 5,
        },
    );

    verify(
        &trace,
        &VerifySpec::new(blocks.len(), inputs).with_lemma11_bound(&schedule),
    )
    .assert_ok();

    println!("── {label} (min_k = {})", guaranteed_k(&schedule));
    for (b, block) in blocks.iter().enumerate() {
        let decisions: Vec<String> = block
            .iter()
            .map(|p| {
                let d = trace.decision_of(p).unwrap();
                format!("{p}→{} (r{})", d.value, d.round)
            })
            .collect();
        println!("   segment {}: {}", b + 1, decisions.join(", "));
        // intra-segment consensus: exactly one value per segment
        let vals: std::collections::BTreeSet<Value> = block
            .iter()
            .map(|p| trace.decision_of(p).unwrap().value)
            .collect();
        assert_eq!(vals.len(), 1, "segment {b} failed internal consensus");
    }
    // Every node decided through the strong-connectivity rule — its own
    // segment became its approximation graph.
    assert!(finals
        .iter()
        .all(|a| a.decision_path() == Some(DecisionPath::StronglyConnected)));
    let distinct = trace.distinct_decision_values().len();
    println!(
        "   {distinct} distinct value(s), all decided by round {} ≤ bound {bound}\n",
        trace.last_decision_round().unwrap()
    );
    distinct
}

fn main() {
    println!("12-node cluster, 5/4/3-way partition, Algorithm 1 (k never configured)\n");
    let immediate = run_case("split from round 1", 0);
    assert_eq!(immediate, 3, "independent segments decide their own minima");

    let after_prefix = run_case("split after 4 healthy rounds", 4);
    assert!(after_prefix <= 3);
    println!(
        "with a healthy prefix, pre-split gossip spread the global minimum,\n\
         so only {after_prefix} value(s) emerged — k-agreement permits fewer than k.\n\
         intra-segment consensus held in both runs ✓"
    );
}
